//! Wire frontends: the line-delimited JSON protocol over any
//! reader/writer pair, a thread-per-connection TCP acceptor, an
//! event-driven non-blocking TCP poll loop, and a stdin/stdout binding.
//!
//! One request per line, one response line per request, in order. A
//! malformed line gets a `rejected` response (with the parse error as
//! the reason) and the connection stays up — one bad client line must
//! not take down a batch.
//!
//! Two TCP modes share that protocol:
//!
//! * [`serve_tcp`] — one thread per connection, blocking I/O. Simple,
//!   and fine for a handful of long-lived pipelined clients.
//! * [`serve_poll`] — **one** frontend thread multiplexing every
//!   connection with non-blocking sockets and per-connection state
//!   machines. Requests are submitted as [`Ticket`]s and polled with
//!   [`Ticket::try_wait`], so a slow mining run never parks the
//!   frontend; meanwhile the loop enforces the *outer* tiers of the
//!   admission policy — a connection cap (refused connections get one
//!   rejection line) and a per-client in-flight quota (excess lines get
//!   rejection responses) — before the service's own queue-depth and
//!   Geerts-bound tiers even see the request.

use crate::request::{parse_request, render_response, MineResponse, MineStats};
use crate::service::{MineService, Ticket};
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// Drives the line protocol over `input`/`output` until EOF. Each line
/// is parsed, submitted, and awaited; responses are written in request
/// order, flushed per line (a client pipelining a batch sees answers as
/// they land).
pub fn serve_lines<R: BufRead, W: Write>(
    service: &MineService,
    input: R,
    mut output: W,
) -> io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse_request(&line) {
            Ok(request) => service.mine(request),
            Err(e) => MineResponse::rejected(format!("parse error: {e}"), MineStats::default()),
        };
        output.write_all(render_response(&response).as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
    }
    Ok(())
}

/// Serves one TCP connection with the line protocol.
pub fn serve_connection(service: &MineService, stream: TcpStream) -> io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    serve_lines(service, reader, stream)
}

/// Accept loop: one thread per connection, all sharing `service` (and
/// therefore its queue, cache, and metrics). `max_conns` bounds how
/// many connections are accepted before returning — `None` serves
/// forever; tests and the CI batch job pass `Some(1)`.
pub fn serve_tcp(
    service: &MineService,
    listener: TcpListener,
    max_conns: Option<usize>,
) -> io::Result<()> {
    std::thread::scope(|scope| {
        for (accepted, stream) in listener.incoming().enumerate() {
            let stream = stream?;
            let service = service.clone();
            scope.spawn(move || {
                // Per-connection I/O errors (client hangup) end that
                // connection only.
                let _ = serve_connection(&service, stream);
            });
            if max_conns.is_some_and(|m| accepted + 1 >= m) {
                break;
            }
        }
        Ok(())
    })
}

/// Binds the line protocol to stdin/stdout: the `fpm-mine serve --stdio`
/// mode, and the simplest way to script a query batch.
pub fn serve_stdio(service: &MineService) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_lines(service, stdin.lock(), stdout.lock())
}

/// Tuning knobs of the [`serve_poll`] event loop.
#[derive(Debug, Clone, Copy)]
pub struct FrontendConfig {
    /// Maximum concurrently open connections. A connection accepted
    /// beyond the cap gets a single `rejected` line and is closed —
    /// the outermost admission tier.
    pub max_connections: usize,
    /// Per-client quota: request lines arriving while this many of the
    /// connection's requests are still in flight are answered with a
    /// `rejected` response instead of being submitted — the middle
    /// admission tier, ahead of the service's queue-depth and
    /// candidate-bound tiers.
    pub max_inflight_per_conn: usize,
    /// Longest accepted request line. A connection exceeding it without
    /// a newline gets a rejection and is closed (the stream cannot be
    /// resynchronised).
    pub max_line_bytes: usize,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            max_connections: 64,
            max_inflight_per_conn: 16,
            max_line_bytes: 1 << 20,
        }
    }
}

/// What one [`serve_poll`] run did, for logs and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontendStats {
    /// Connections accepted and served.
    pub connections_served: u64,
    /// Connections refused at the cap.
    pub connections_refused: u64,
    /// Request lines rejected by the per-client in-flight quota.
    pub quota_rejections: u64,
    /// Request lines submitted to the service.
    pub lines_submitted: u64,
}

/// A response owed to the client, kept in arrival order. Quota and
/// parse rejections are `Ready` immediately but still wait their turn
/// behind earlier in-flight requests, preserving one-response-per-line
/// ordering.
enum Pending {
    Waiting(Ticket),
    Ready(String),
}

/// Per-connection state machine for the poll loop.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet terminated by a newline.
    rbuf: Vec<u8>,
    /// Rendered response bytes not yet accepted by the socket.
    wbuf: Vec<u8>,
    /// Responses owed, in request order.
    pending: VecDeque<Pending>,
    /// Client closed its write side (EOF seen); drain and close.
    read_closed: bool,
    /// Protocol error (oversized line): stop reading, flush, close.
    poisoned: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        Ok(Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            pending: VecDeque::new(),
            read_closed: false,
            poisoned: false,
        })
    }

    fn inflight(&self) -> usize {
        self.pending
            .iter()
            .filter(|p| matches!(p, Pending::Waiting(_)))
            .count()
    }

    fn queue_response(&mut self, resp: &MineResponse) {
        let mut line = render_response(resp);
        line.push('\n');
        self.pending.push_back(Pending::Ready(line));
    }

    /// True when everything owed has been flushed and no more input can
    /// arrive.
    fn finished(&self) -> bool {
        (self.read_closed || self.poisoned) && self.pending.is_empty() && self.wbuf.is_empty()
    }
}

/// Event-driven TCP frontend: a single thread multiplexes all
/// connections with non-blocking I/O, submitting requests as tickets
/// and collecting responses via [`Ticket::try_wait`]. `max_conns`
/// bounds how many connections are *accepted* in total before the loop
/// drains and returns — `None` serves forever.
pub fn serve_poll(
    service: &MineService,
    listener: TcpListener,
    cfg: FrontendConfig,
    max_conns: Option<usize>,
) -> io::Result<FrontendStats> {
    listener.set_nonblocking(true)?;
    let mut stats = FrontendStats::default();
    let mut conns: Vec<Conn> = Vec::new();
    let mut accepted_total: usize = 0;
    loop {
        let mut progressed = false;

        // Accept tier: a connection past the open-connection cap — or
        // past the total-served quota, when one is set — is answered
        // with a single rejection line and closed, never left hanging
        // in the backlog.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    progressed = true;
                    let over_cap = conns.len() >= cfg.max_connections
                        || max_conns.is_some_and(|m| accepted_total >= m);
                    if over_cap {
                        stats.connections_refused += 1;
                        refuse_connection(stream, cfg.max_connections);
                        continue;
                    }
                    accepted_total += 1;
                    stats.connections_served += 1;
                    conns.push(Conn::new(stream)?);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }

        // Drive every connection's state machine one step.
        let mut closed: Vec<usize> = Vec::new();
        for (idx, conn) in conns.iter_mut().enumerate() {
            match step_conn(service, conn, &cfg, &mut stats) {
                Ok(p) => progressed |= p,
                // I/O error (client hangup mid-write): cancel whatever
                // the dead client was still waiting on — the mining
                // runs stop at their next checkpoint — and close.
                Err(_) => {
                    for p in &conn.pending {
                        if let Pending::Waiting(ticket) = p {
                            ticket.cancel();
                        }
                    }
                    closed.push(idx);
                    continue;
                }
            }
            if conn.finished() {
                closed.push(idx);
            }
        }
        for idx in closed.into_iter().rev() {
            conns.remove(idx);
            progressed = true;
        }

        if max_conns.is_some_and(|m| accepted_total >= m) && conns.is_empty() {
            return Ok(stats);
        }
        if !progressed {
            // Nothing moved: park briefly instead of spinning. 500µs
            // keeps worst-case added latency well under a mining run.
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}

/// Best-effort rejection line for a connection refused at the cap.
fn refuse_connection(mut stream: TcpStream, cap: usize) {
    let resp = MineResponse::rejected(
        format!("connection limit reached ({cap} open)"),
        MineStats::default(),
    );
    let mut line = render_response(&resp);
    line.push('\n');
    let _ = stream.write_all(line.as_bytes());
}

/// One step of a connection's state machine: read what's available,
/// parse complete lines through the quota tier, promote finished
/// tickets, and flush what the socket will take. Returns whether any
/// progress was made; `Err` means the connection is dead.
fn step_conn(
    service: &MineService,
    conn: &mut Conn,
    cfg: &FrontendConfig,
    stats: &mut FrontendStats,
) -> io::Result<bool> {
    let mut progressed = false;

    // Read tier.
    if !conn.read_closed && !conn.poisoned {
        let mut chunk = [0u8; 4096];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    progressed = true;
                    break;
                }
                Ok(n) => {
                    // `read` contracts `n <= chunk.len()`; the checked
                    // accessor keeps this path panic-free even against
                    // a misbehaving reader.
                    if let Some(read) = chunk.get(..n) {
                        conn.rbuf.extend_from_slice(read);
                    }
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        // Parse every complete line out of the read buffer.
        while let Some(nl) = conn.rbuf.iter().position(|&b| b == b'\n') {
            let mut line: Vec<u8> = conn.rbuf.drain(..=nl).collect();
            // Drop the trailing newline the drain kept (position
            // guarantees it is there; pop is panic-free regardless).
            line.pop();
            let line = String::from_utf8_lossy(&line).into_owned();
            if line.trim().is_empty() {
                continue;
            }
            progressed = true;
            if conn.inflight() >= cfg.max_inflight_per_conn {
                stats.quota_rejections += 1;
                conn.queue_response(&MineResponse::rejected(
                    format!(
                        "per-client quota exceeded ({} requests in flight)",
                        cfg.max_inflight_per_conn
                    ),
                    MineStats::default(),
                ));
                continue;
            }
            match parse_request(&line) {
                Ok(request) => {
                    stats.lines_submitted += 1;
                    conn.pending.push_back(Pending::Waiting(service.submit(request)));
                }
                Err(e) => {
                    conn.queue_response(&MineResponse::rejected(
                        format!("parse error: {e}"),
                        MineStats::default(),
                    ));
                }
            }
        }
        if conn.rbuf.len() > cfg.max_line_bytes {
            conn.poisoned = true;
            conn.rbuf.clear();
            conn.queue_response(&MineResponse::rejected(
                format!("request line exceeds {} bytes", cfg.max_line_bytes),
                MineStats::default(),
            ));
            progressed = true;
        }
    }

    // Promote tier: move responses into the write buffer strictly in
    // request order — a later ticket finishing first still waits.
    loop {
        match conn.pending.front_mut() {
            Some(Pending::Ready(_)) => {
                let Some(Pending::Ready(line)) = conn.pending.pop_front() else {
                    // Unreachable: the match arm above just saw
                    // `front_mut()` return `Ready`, and nothing runs
                    // between peek and pop.
                    // also-lint: allow(panic-path)
                    unreachable!()
                };
                conn.wbuf.extend_from_slice(line.as_bytes());
                progressed = true;
            }
            Some(Pending::Waiting(ticket)) => match ticket.try_wait() {
                Some(resp) => {
                    let mut line = render_response(&resp);
                    line.push('\n');
                    conn.wbuf.extend_from_slice(line.as_bytes());
                    conn.pending.pop_front();
                    progressed = true;
                }
                None => break,
            },
            None => break,
        }
    }

    // Flush tier.
    while !conn.wbuf.is_empty() {
        match conn.stream.write(&conn.wbuf) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                conn.wbuf.drain(..n);
                progressed = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }

    Ok(progressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;

    fn toy_line(kernel: &str, extra: &str) -> String {
        format!(
            r#"{{"dataset":{{"inline":[[0,2,5],[1,2,5],[0,2,5],[3,4],[0,1,2,3,4,5]]}},"kernel":"{kernel}","min_support":2{extra}}}"#
        )
    }

    #[test]
    fn line_protocol_roundtrip() {
        let svc = MineService::start(ServeConfig::default());
        let input = format!(
            "{}\n\n{}\nnot json at all\n",
            toy_line("lcm", ""),
            toy_line("eclat", r#","include_patterns":false"#)
        );
        let mut out = Vec::new();
        serve_lines(&svc, input.as_bytes(), &mut out).unwrap();
        let lines: Vec<String> = out.lines().map(|l| l.unwrap()).collect();
        assert_eq!(lines.len(), 3, "blank line skipped, bad line answered");
        let first = crate::json::parse(&lines[0]).unwrap();
        assert_eq!(first.get("outcome").unwrap().as_str(), Some("complete"));
        assert!(first.get("patterns").is_some());
        let second = crate::json::parse(&lines[1]).unwrap();
        assert!(second.get("patterns").is_none(), "count-only");
        let third = crate::json::parse(&lines[2]).unwrap();
        assert_eq!(third.get("outcome").unwrap().as_str(), Some("rejected"));
        assert!(third
            .get("reason")
            .unwrap()
            .as_str()
            .unwrap()
            .starts_with("parse error"));
        svc.shutdown();
    }

    #[test]
    fn tcp_frontend_answers_a_batch() {
        let svc = MineService::start(ServeConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let svc2 = svc.clone();
        let server = std::thread::spawn(move || serve_tcp(&svc2, listener, Some(1)));

        let mut stream = TcpStream::connect(addr).unwrap();
        let batch = format!("{}\n{}\n", toy_line("lcm", ""), toy_line("fpgrowth", ""));
        stream.write_all(batch.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let reader = std::io::BufReader::new(stream);
        let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v = crate::json::parse(line).unwrap();
            assert_eq!(v.get("outcome").unwrap().as_str(), Some("complete"));
        }
        server.join().unwrap().unwrap();
        svc.shutdown();
    }

    #[test]
    fn poll_frontend_answers_interleaved_clients() {
        // Two clients pipelining batches against ONE frontend thread:
        // the poll loop must interleave them without a thread per
        // connection, and each client still sees in-order responses.
        let svc = MineService::start(ServeConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let svc2 = svc.clone();
        let server = std::thread::spawn(move || {
            serve_poll(&svc2, listener, FrontendConfig::default(), Some(2))
        });

        let clients: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    let batch = format!(
                        "{}\nnot json\n{}\n",
                        toy_line("lcm", ""),
                        toy_line("eclat", "")
                    );
                    stream.write_all(batch.as_bytes()).unwrap();
                    stream.shutdown(std::net::Shutdown::Write).unwrap();
                    let reader = std::io::BufReader::new(stream);
                    let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
                    assert_eq!(lines.len(), 3);
                    let outcomes: Vec<String> = lines
                        .iter()
                        .map(|l| {
                            crate::json::parse(l)
                                .unwrap()
                                .get("outcome")
                                .unwrap()
                                .as_str()
                                .unwrap()
                                .to_string()
                        })
                        .collect();
                    assert_eq!(
                        outcomes,
                        ["complete", "rejected", "complete"],
                        "responses arrive in request order"
                    );
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        let stats = server.join().unwrap().unwrap();
        assert_eq!(stats.connections_served, 2);
        assert_eq!(stats.lines_submitted, 4);
        assert_eq!(stats.connections_refused, 0);
        svc.shutdown();
    }

    #[test]
    fn poll_frontend_refuses_connections_past_the_cap() {
        let svc = MineService::start(ServeConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let svc2 = svc.clone();
        let cfg = FrontendConfig {
            max_connections: 1,
            ..FrontendConfig::default()
        };
        let server = std::thread::spawn(move || serve_poll(&svc2, listener, cfg, Some(1)));

        // First connection occupies the single slot; keep it open while
        // the second connects.
        let mut first = TcpStream::connect(addr).unwrap();
        // Wait until the refused peer has actually been turned away so
        // the cap (not accept-queue timing) is what we assert on.
        let second = TcpStream::connect(addr).unwrap();
        let reader = std::io::BufReader::new(second);
        let mut lines = reader.lines();
        let refusal = lines.next().unwrap().unwrap();
        let v = crate::json::parse(&refusal).unwrap();
        assert_eq!(v.get("outcome").unwrap().as_str(), Some("rejected"));
        assert!(v
            .get("reason")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("connection limit"));
        assert!(lines.next().is_none(), "refused connection is closed");

        first.write_all(format!("{}\n", toy_line("lcm", "")).as_bytes()).unwrap();
        first.shutdown(std::net::Shutdown::Write).unwrap();
        let reader = std::io::BufReader::new(first);
        let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
        assert_eq!(lines.len(), 1, "the admitted connection is served normally");
        let stats = server.join().unwrap().unwrap();
        assert_eq!(stats.connections_served, 1);
        assert_eq!(stats.connections_refused, 1);
        svc.shutdown();
    }

    #[test]
    fn poll_frontend_enforces_the_per_client_quota() {
        // Quota 1, mining gate held: the first line occupies the quota
        // slot, the next two are rejected at the frontend tier without
        // ever reaching the service.
        let svc = MineService::start(ServeConfig::default());
        svc.hold_mining(true);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let svc2 = svc.clone();
        let cfg = FrontendConfig {
            max_inflight_per_conn: 1,
            ..FrontendConfig::default()
        };
        let server = std::thread::spawn(move || serve_poll(&svc2, listener, cfg, Some(1)));

        let mut stream = TcpStream::connect(addr).unwrap();
        let batch = format!(
            "{}\n{}\n{}\n",
            toy_line("lcm", ""),
            toy_line("lcm", ""),
            toy_line("lcm", "")
        );
        stream.write_all(batch.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        // Let the quota rejections happen while the first request is
        // provably still in flight, then release the gate.
        for _ in 0..2000 {
            if svc.metrics().get("requests_submitted") >= 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        svc.hold_mining(false);

        let reader = std::io::BufReader::new(stream);
        let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
        assert_eq!(lines.len(), 3);
        let first = crate::json::parse(&lines[0]).unwrap();
        assert_eq!(first.get("outcome").unwrap().as_str(), Some("complete"));
        for line in &lines[1..] {
            let v = crate::json::parse(line).unwrap();
            assert_eq!(v.get("outcome").unwrap().as_str(), Some("rejected"));
            assert!(v
                .get("reason")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("per-client quota"));
        }
        let stats = server.join().unwrap().unwrap();
        assert_eq!(stats.quota_rejections, 2);
        assert_eq!(stats.lines_submitted, 1);
        assert_eq!(
            svc.metrics().get("requests_submitted"),
            1,
            "quota rejections never reach the service"
        );
        svc.shutdown();
    }

    #[test]
    fn poll_frontend_rejects_oversized_lines_and_closes() {
        let svc = MineService::start(ServeConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let svc2 = svc.clone();
        let cfg = FrontendConfig {
            max_line_bytes: 64,
            ..FrontendConfig::default()
        };
        let server = std::thread::spawn(move || serve_poll(&svc2, listener, cfg, Some(1)));

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&vec![b'x'; 256]).unwrap();
        let reader = std::io::BufReader::new(stream);
        let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
        assert_eq!(lines.len(), 1);
        let v = crate::json::parse(&lines[0]).unwrap();
        assert_eq!(v.get("outcome").unwrap().as_str(), Some("rejected"));
        assert!(v.get("reason").unwrap().as_str().unwrap().contains("exceeds"));
        server.join().unwrap().unwrap();
        svc.shutdown();
    }
}
