//! Wire frontends: the line-delimited JSON protocol over any
//! reader/writer pair, a TCP acceptor, and a stdin/stdout binding.
//!
//! One request per line, one response line per request, in order. A
//! malformed line gets a `rejected` response (with the parse error as
//! the reason) and the connection stays up — one bad client line must
//! not take down a batch.

use crate::request::{parse_request, render_response, MineResponse, MineStats};
use crate::service::MineService;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

/// Drives the line protocol over `input`/`output` until EOF. Each line
/// is parsed, submitted, and awaited; responses are written in request
/// order, flushed per line (a client pipelining a batch sees answers as
/// they land).
pub fn serve_lines<R: BufRead, W: Write>(
    service: &MineService,
    input: R,
    mut output: W,
) -> io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse_request(&line) {
            Ok(request) => service.mine(request),
            Err(e) => MineResponse::rejected(format!("parse error: {e}"), MineStats::default()),
        };
        output.write_all(render_response(&response).as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
    }
    Ok(())
}

/// Serves one TCP connection with the line protocol.
pub fn serve_connection(service: &MineService, stream: TcpStream) -> io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    serve_lines(service, reader, stream)
}

/// Accept loop: one thread per connection, all sharing `service` (and
/// therefore its queue, cache, and metrics). `max_conns` bounds how
/// many connections are accepted before returning — `None` serves
/// forever; tests and the CI batch job pass `Some(1)`.
pub fn serve_tcp(
    service: &MineService,
    listener: TcpListener,
    max_conns: Option<usize>,
) -> io::Result<()> {
    std::thread::scope(|scope| {
        for (accepted, stream) in listener.incoming().enumerate() {
            let stream = stream?;
            let service = service.clone();
            scope.spawn(move || {
                // Per-connection I/O errors (client hangup) end that
                // connection only.
                let _ = serve_connection(&service, stream);
            });
            if max_conns.is_some_and(|m| accepted + 1 >= m) {
                break;
            }
        }
        Ok(())
    })
}

/// Binds the line protocol to stdin/stdout: the `fpm-mine serve --stdio`
/// mode, and the simplest way to script a query batch.
pub fn serve_stdio(service: &MineService) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_lines(service, stdin.lock(), stdout.lock())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;

    fn toy_line(kernel: &str, extra: &str) -> String {
        format!(
            r#"{{"dataset":{{"inline":[[0,2,5],[1,2,5],[0,2,5],[3,4],[0,1,2,3,4,5]]}},"kernel":"{kernel}","min_support":2{extra}}}"#
        )
    }

    #[test]
    fn line_protocol_roundtrip() {
        let svc = MineService::start(ServeConfig::default());
        let input = format!(
            "{}\n\n{}\nnot json at all\n",
            toy_line("lcm", ""),
            toy_line("eclat", r#","include_patterns":false"#)
        );
        let mut out = Vec::new();
        serve_lines(&svc, input.as_bytes(), &mut out).unwrap();
        let lines: Vec<String> = out.lines().map(|l| l.unwrap()).collect();
        assert_eq!(lines.len(), 3, "blank line skipped, bad line answered");
        let first = crate::json::parse(&lines[0]).unwrap();
        assert_eq!(first.get("outcome").unwrap().as_str(), Some("complete"));
        assert!(first.get("patterns").is_some());
        let second = crate::json::parse(&lines[1]).unwrap();
        assert!(second.get("patterns").is_none(), "count-only");
        let third = crate::json::parse(&lines[2]).unwrap();
        assert_eq!(third.get("outcome").unwrap().as_str(), Some("rejected"));
        assert!(third
            .get("reason")
            .unwrap()
            .as_str()
            .unwrap()
            .starts_with("parse error"));
        svc.shutdown();
    }

    #[test]
    fn tcp_frontend_answers_a_batch() {
        let svc = MineService::start(ServeConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let svc2 = svc.clone();
        let server = std::thread::spawn(move || serve_tcp(&svc2, listener, Some(1)));

        let mut stream = TcpStream::connect(addr).unwrap();
        let batch = format!("{}\n{}\n", toy_line("lcm", ""), toy_line("fpgrowth", ""));
        stream.write_all(batch.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let reader = std::io::BufReader::new(stream);
        let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v = crate::json::parse(line).unwrap();
            assert_eq!(v.get("outcome").unwrap().as_str(), Some("complete"));
        }
        server.join().unwrap().unwrap();
        svc.shutdown();
    }
}
