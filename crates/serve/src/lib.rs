//! # `fpm-serve` — the mining service layer
//!
//! Batch miners answer one query and exit; a *service* answers a stream
//! of queries from callers with latency expectations. This crate turns
//! the workspace's kernels into such a service (DESIGN.md §10):
//!
//! * **dataset-sharded worker pools** ([`MineService`]): requests
//!   route by a stable hash of the dataset spec to independent shards,
//!   each with its own bounded FIFO queue, workers, cache partition and
//!   metrics — one hot dataset cannot queue behind another's backlog
//!   (DESIGN.md §13);
//! * **single-flight coalescing**: identical in-flight `(dataset
//!   fingerprint, kernel, min_support)` requests attach to one run and
//!   share its result — a cold-cache stampede mines exactly once;
//! * **deadlines, budgets, and cancellation** via the cooperative
//!   [`fpm::MineControl`] threaded through every kernel's recursion
//!   spine — a stopped run's output is always a contiguous *prefix* of
//!   the serial emission order, never a scramble;
//! * an LRU **result cache** keyed by `(dataset fingerprint, kernel,
//!   min_support)` with optional byte budget and TTL
//!   ([`cache::CacheConfig`]) so repeated queries skip mining entirely;
//! * **tiered admission**: connection caps and per-client quotas at the
//!   frontend, queue-depth backpressure at submit, and the
//!   Geerts-style candidate bound ([`fpm::bound`]) rejecting requests
//!   whose search space provably exceeds a ceiling before any work is
//!   spent;
//! * three frontends over one request model: the in-process handle
//!   ([`MineService::mine`] / [`MineService::submit`]), a
//!   thread-per-connection line-delimited JSON protocol over TCP or
//!   stdio ([`frontend::serve_tcp`], [`frontend::serve_stdio`]), and a
//!   single-threaded non-blocking poll loop ([`frontend::serve_poll`]);
//! * a deterministic **load generator** ([`loadgen`], `fpm-mine
//!   loadgen`): a seeded open-loop schedule whose reproducible half is
//!   committed as `BENCH_serve.json`;
//! * per-request **metrics** through [`fpm::metrics::MetricSet`],
//!   globally and per shard ([`MineService::metrics`],
//!   [`MineService::shard_metrics`]).
//!
//! Every response carries an [`Outcome`]: `Complete`, `Cancelled`,
//! `DeadlineExceeded`, `Rejected`, or `Failed` (a mining task panicked;
//! the worker caught the unwind and the response still holds the serial
//! prefix emitted before the failure).
//!
//! ```
//! use fpm_serve::{DatasetSpec, Kernel, MineRequest, MineService, Outcome, ServeConfig};
//!
//! let svc = MineService::start(ServeConfig::default());
//! let resp = svc.mine(MineRequest::new(
//!     DatasetSpec::Inline(vec![vec![1, 2, 3], vec![1, 2], vec![2, 3]]),
//!     Kernel::Lcm,
//!     2,
//! ));
//! assert_eq!(resp.outcome, Outcome::Complete);
//! assert!(resp.count > 0);
//! svc.shutdown();
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod cache;
pub mod frontend;
pub mod json;
pub mod loadgen;
pub mod request;
pub mod service;

pub use cache::{fingerprint, Lookup, ResultCache};
pub use frontend::{
    serve_connection, serve_lines, serve_poll, serve_stdio, serve_tcp, FrontendConfig,
    FrontendStats,
};
pub use loadgen::{LoadConfig, LoadReport};
pub use request::{
    parse_request, render_response, DatasetSpec, Kernel, MineRequest, MineResponse, MineStats,
    Outcome,
};
pub use service::{MineService, ServeConfig, Ticket, METRIC_NAMES};
