//! # `fpm-serve` — the mining service layer
//!
//! Batch miners answer one query and exit; a *service* answers a stream
//! of queries from callers with latency expectations. This crate turns
//! the workspace's kernels into such a service (DESIGN.md §10):
//!
//! * a bounded **worker pool** ([`MineService`]) draining a FIFO job
//!   queue, each job a [`MineRequest`] naming a dataset, kernel, and
//!   support threshold;
//! * **deadlines, budgets, and cancellation** via the cooperative
//!   [`fpm::MineControl`] threaded through every kernel's recursion
//!   spine — a stopped run's output is always a contiguous *prefix* of
//!   the serial emission order, never a scramble;
//! * an LRU **result cache** keyed by `(dataset fingerprint, kernel,
//!   min_support)` so repeated queries skip mining entirely;
//! * **admission control** from the Geerts-style candidate bound
//!   ([`fpm::bound`]): requests whose search space provably exceeds a
//!   ceiling are rejected before any work is spent;
//! * two frontends over one request model: the in-process handle
//!   ([`MineService::mine`] / [`MineService::submit`]) and a
//!   line-delimited JSON protocol over TCP or stdio
//!   ([`frontend::serve_tcp`], [`frontend::serve_stdio`]);
//! * per-request **metrics** through [`fpm::metrics::MetricSet`]
//!   ([`MineService::metrics`]).
//!
//! Every response carries an [`Outcome`]: `Complete`, `Cancelled`,
//! `DeadlineExceeded`, `Rejected`, or `Failed` (a mining task panicked;
//! the worker caught the unwind and the response still holds the serial
//! prefix emitted before the failure).
//!
//! ```
//! use fpm_serve::{DatasetSpec, Kernel, MineRequest, MineService, Outcome, ServeConfig};
//!
//! let svc = MineService::start(ServeConfig::default());
//! let resp = svc.mine(MineRequest::new(
//!     DatasetSpec::Inline(vec![vec![1, 2, 3], vec![1, 2], vec![2, 3]]),
//!     Kernel::Lcm,
//!     2,
//! ));
//! assert_eq!(resp.outcome, Outcome::Complete);
//! assert!(resp.count > 0);
//! svc.shutdown();
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod cache;
pub mod frontend;
pub mod json;
pub mod request;
pub mod service;

pub use cache::{fingerprint, Lookup, ResultCache};
pub use frontend::{serve_connection, serve_lines, serve_stdio, serve_tcp};
pub use request::{
    parse_request, render_response, DatasetSpec, Kernel, MineRequest, MineResponse, MineStats,
    Outcome,
};
pub use service::{MineService, ServeConfig, Ticket, METRIC_NAMES};
