//! Result cache: repeated queries skip mining entirely.
//!
//! Keyed by `(dataset fingerprint, kernel, min_support)` — the three
//! inputs that determine a miner's output exactly. Only *complete,
//! untruncated* runs are inserted, so a hit can serve any request
//! (budget-limited callers get a prefix of the cached list, which is by
//! construction the same prefix a fresh truncated run would emit).
//!
//! Eviction is least-recently-used via a monotonic stamp; the map is a
//! `BTreeMap` so iteration during eviction is deterministic (the R3
//! `deterministic-iteration` rule of the emission path).
//!
//! Every entry carries an FNV checksum of its pattern list, computed at
//! insert and verified on every probe. A cached answer is served to
//! arbitrarily many callers, so a corrupted entry (a flipped bit, a
//! truncated list — whatever the cause) must never leave the cache:
//! [`ResultCache::probe`] detects the mismatch, drops the entry, and
//! reports [`Lookup::Corrupt`] so the service re-mines instead of
//! serving poison.

use fpm::{ItemsetCount, TransactionDb};
use std::collections::BTreeMap;
use std::sync::Arc;

/// `(dataset fingerprint, kernel code, min_support)`.
pub type CacheKey = (u64, u8, u64);

/// FNV-1a over the full transaction content — shape and items — so two
/// datasets collide only with 64-bit-hash probability. Deterministic
/// across runs and platforms.
pub fn fingerprint(db: &TransactionDb) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(db.len() as u64);
    for t in db.transactions() {
        eat(t.len() as u64);
        for &item in t {
            eat(item as u64);
        }
    }
    h
}

/// FNV-1a over a pattern list — length, items, and supports — the
/// integrity stamp each cache entry carries from insert to probe.
pub fn checksum(patterns: &[ItemsetCount]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(patterns.len() as u64);
    for p in patterns {
        eat(p.items.len() as u64);
        for &item in &p.items {
            eat(item as u64);
        }
        eat(p.support);
    }
    h
}

/// What a [`ResultCache::probe`] found.
#[derive(Debug)]
pub enum Lookup {
    /// A verified entry: serve it.
    Hit(Arc<Vec<ItemsetCount>>),
    /// An entry was present but failed its checksum; it has been
    /// dropped. The caller must treat this as a miss and re-mine.
    Corrupt,
    /// No entry.
    Miss,
}

struct Entry {
    patterns: Arc<Vec<ItemsetCount>>,
    checksum: u64,
    stamp: u64,
}

/// A bounded LRU map from [`CacheKey`] to a complete pattern list.
/// Not internally synchronized — the service wraps it in a `Mutex`.
pub struct ResultCache {
    capacity: usize,
    clock: u64,
    map: BTreeMap<CacheKey, Entry>,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` results (`0` disables
    /// caching entirely).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            clock: 0,
            map: BTreeMap::new(),
        }
    }

    /// Looks `key` up, verifying the entry's checksum; a verified hit
    /// refreshes its recency, a corrupted entry is dropped on the spot.
    pub fn probe(&mut self, key: &CacheKey) -> Lookup {
        self.clock += 1;
        let clock = self.clock;
        let Some(e) = self.map.get_mut(key) else {
            return Lookup::Miss;
        };
        // Chaos injection site: flip bytes of the cached list *before*
        // the integrity check, exactly where rot would land. Only
        // compiled under this crate's `chaos` feature — the Arc
        // copy-on-write is not free, so the production probe path must
        // not carry it.
        #[cfg(feature = "chaos")]
        {
            let _ = fpm::faults::corrupt_patterns(Arc::make_mut(&mut e.patterns));
        }
        if checksum(&e.patterns) != e.checksum {
            self.map.remove(key);
            return Lookup::Corrupt;
        }
        e.stamp = clock;
        Lookup::Hit(Arc::clone(&e.patterns))
    }

    /// [`probe`](ResultCache::probe) collapsed to an `Option`: corrupt
    /// entries read as misses (they have already been dropped).
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<Vec<ItemsetCount>>> {
        match self.probe(key) {
            Lookup::Hit(patterns) => Some(patterns),
            Lookup::Corrupt | Lookup::Miss => None,
        }
    }

    /// Inserts a complete result, evicting the least-recently-used
    /// entry if the cache is full. Returns the number of evictions
    /// (0 or 1).
    pub fn insert(&mut self, key: CacheKey, patterns: Arc<Vec<ItemsetCount>>) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        self.clock += 1;
        let mut evicted = 0;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
            {
                self.map.remove(&oldest);
                evicted = 1;
            }
        }
        let sum = checksum(&patterns);
        self.map.insert(
            key,
            Entry {
                patterns,
                checksum: sum,
                stamp: self.clock,
            },
        );
        evicted
    }

    /// Test support: mutates the cached pattern list for `key` in place
    /// *without* refreshing its checksum — simulating rot between
    /// insert and probe. Returns `false` when the key is absent.
    #[doc(hidden)]
    pub fn tamper(&mut self, key: &CacheKey, f: impl FnOnce(&mut Vec<ItemsetCount>)) -> bool {
        match self.map.get_mut(key) {
            Some(e) => {
                f(Arc::make_mut(&mut e.patterns));
                true
            }
            None => false,
        }
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pats(n: u64) -> Arc<Vec<ItemsetCount>> {
        Arc::new(vec![ItemsetCount {
            items: vec![n as u32],
            support: n,
        }])
    }

    #[test]
    fn fingerprint_distinguishes_contents() {
        let a = TransactionDb::from_transactions(vec![vec![1, 2], vec![3]]);
        let b = TransactionDb::from_transactions(vec![vec![1], vec![2, 3]]);
        let c = TransactionDb::from_transactions(vec![vec![1, 2], vec![3]]);
        assert_ne!(fingerprint(&a), fingerprint(&b), "same items, split differently");
        assert_eq!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ResultCache::new(2);
        assert_eq!(c.insert((1, 0, 1), pats(1)), 0);
        assert_eq!(c.insert((2, 0, 1), pats(2)), 0);
        assert!(c.get(&(1, 0, 1)).is_some()); // refresh key 1
        assert_eq!(c.insert((3, 0, 1), pats(3)), 1); // evicts key 2
        assert!(c.get(&(2, 0, 1)).is_none());
        assert!(c.get(&(1, 0, 1)).is_some());
        assert!(c.get(&(3, 0, 1)).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_does_not_evict() {
        let mut c = ResultCache::new(1);
        assert_eq!(c.insert((1, 0, 1), pats(1)), 0);
        assert_eq!(c.insert((1, 0, 1), pats(9)), 0, "same key: overwrite in place");
        assert_eq!(c.get(&(1, 0, 1)).unwrap()[0].support, 9);
    }

    #[test]
    fn corrupted_entry_is_dropped_not_served() {
        // Satellite: serve::cache poisoning. A flipped byte must read
        // as Corrupt (then a miss — the service re-mines), never as a
        // hit serving the poisoned list.
        let mut c = ResultCache::new(4);
        c.insert((1, 0, 1), pats(1));
        assert!(c.tamper(&(1, 0, 1), |p| p[0].support ^= 1));
        assert!(
            matches!(c.probe(&(1, 0, 1)), Lookup::Corrupt),
            "checksum mismatch must surface as Corrupt"
        );
        assert!(c.is_empty(), "the poisoned entry is gone");
        assert!(
            matches!(c.probe(&(1, 0, 1)), Lookup::Miss),
            "subsequent probes are plain misses"
        );
    }

    #[test]
    fn truncated_entry_is_dropped_not_served() {
        let mut c = ResultCache::new(4);
        let full = Arc::new(vec![
            ItemsetCount { items: vec![1], support: 3 },
            ItemsetCount { items: vec![1, 2], support: 2 },
            ItemsetCount { items: vec![2], support: 2 },
        ]);
        c.insert((7, 1, 2), Arc::clone(&full));
        assert!(c.tamper(&(7, 1, 2), |p| p.truncate(1)));
        assert!(matches!(c.probe(&(7, 1, 2)), Lookup::Corrupt));
        // Re-inserting a fresh complete result heals the slot.
        c.insert((7, 1, 2), Arc::clone(&full));
        match c.probe(&(7, 1, 2)) {
            Lookup::Hit(got) => assert_eq!(got, full),
            other => panic!("want a verified hit, got {other:?}"),
        }
    }

    #[test]
    fn item_flip_in_any_position_is_detected() {
        let mut c = ResultCache::new(4);
        for victim in 0..3usize {
            let patterns = Arc::new(vec![
                ItemsetCount { items: vec![1], support: 3 },
                ItemsetCount { items: vec![1, 2], support: 2 },
                ItemsetCount { items: vec![2], support: 2 },
            ]);
            c.insert((9, 2, 1), patterns);
            assert!(c.tamper(&(9, 2, 1), |p| p[victim].items[0] ^= 1));
            assert!(
                matches!(c.probe(&(9, 2, 1)), Lookup::Corrupt),
                "victim={victim}"
            );
        }
    }

    #[test]
    fn checksum_is_content_determined() {
        let a = vec![ItemsetCount { items: vec![1, 2], support: 3 }];
        let b = vec![ItemsetCount { items: vec![1, 2], support: 3 }];
        assert_eq!(checksum(&a), checksum(&b));
        let c = vec![ItemsetCount { items: vec![1, 2], support: 4 }];
        assert_ne!(checksum(&a), checksum(&c));
        assert_ne!(checksum(&a), checksum(&[]));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        assert_eq!(c.insert((1, 0, 1), pats(1)), 0);
        assert!(c.get(&(1, 0, 1)).is_none());
        assert!(c.is_empty());
    }
}
