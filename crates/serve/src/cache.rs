//! Result cache: repeated queries skip mining entirely.
//!
//! Keyed by `(dataset fingerprint, kernel, min_support, query)` — the
//! four inputs that determine a miner's output exactly (the query key is
//! the lossless [`QueryKey`] form of the request's [`fpm::PatternQuery`],
//! DESIGN.md §15; pre-query keys map to `QueryKey::default()`). Only
//! *complete, untruncated* runs are inserted, so a hit can serve any
//! request (budget-limited callers get a prefix of the cached list,
//! which is by construction the same prefix a fresh truncated run would
//! emit).
//!
//! Eviction is least-recently-used via a monotonic stamp; the map is a
//! `BTreeMap` so iteration during eviction is deterministic (the R3
//! `deterministic-iteration` rule of the emission path).
//!
//! Every entry carries an FNV checksum of its pattern list, computed at
//! insert and verified on every probe. A cached answer is served to
//! arbitrarily many callers, so a corrupted entry (a flipped bit, a
//! truncated list — whatever the cause) must never leave the cache:
//! [`ResultCache::probe`] detects the mismatch, drops the entry, and
//! reports [`Lookup::Corrupt`] so the service re-mines instead of
//! serving poison.
//!
//! On top of the entry-count bound, [`CacheConfig`] adds two budgets:
//! a **byte budget** (`max_bytes`) that evicts LRU entries until the
//! approximate heap footprint fits, and a **TTL** after which a probe
//! reads the entry as [`Lookup::Expired`] — dropped and re-mined, and
//! counted as a *miss* (never a hit) in the service's probe arithmetic.

use fpm::{ItemsetCount, QueryKey, TransactionDb};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `(dataset fingerprint, kernel code, min_support, query key)`.
pub type CacheKey = (u64, u8, u64, QueryKey);

/// FNV-1a over the full transaction content — shape and items — so two
/// datasets collide only with 64-bit-hash probability. Deterministic
/// across runs and platforms.
pub fn fingerprint(db: &TransactionDb) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(db.len() as u64);
    for t in db.transactions() {
        eat(t.len() as u64);
        for &item in t {
            eat(item as u64);
        }
    }
    h
}

/// FNV-1a over a pattern list — length, items, and supports — the
/// integrity stamp each cache entry carries from insert to probe.
pub fn checksum(patterns: &[ItemsetCount]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(patterns.len() as u64);
    for p in patterns {
        eat(p.items.len() as u64);
        for &item in &p.items {
            eat(item as u64);
        }
        eat(p.support);
    }
    h
}

/// What a [`ResultCache::probe`] found.
#[derive(Debug)]
pub enum Lookup {
    /// A verified entry: serve it.
    Hit(Arc<Vec<ItemsetCount>>),
    /// An entry was present but failed its checksum; it has been
    /// dropped. The caller must treat this as a miss and re-mine.
    Corrupt,
    /// An entry was present but outlived the configured TTL; it has
    /// been dropped. The caller must treat this as a miss and re-mine —
    /// in particular it counts toward `cache_misses`, never
    /// `cache_hits` (the probes = hits + misses invariant).
    Expired,
    /// No entry.
    Miss,
}

/// Sizing and expiry policy for a [`ResultCache`].
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Maximum cached results (`0` disables caching entirely).
    pub capacity: usize,
    /// Byte budget over the approximate heap footprint of all entries
    /// ([`approx_bytes`]); LRU entries are evicted until a new insert
    /// fits. `0` means no byte budget. A single result larger than the
    /// whole budget is simply not cached.
    pub max_bytes: usize,
    /// Entries older than this read as [`Lookup::Expired`] on probe;
    /// `None` never expires.
    pub ttl: Option<Duration>,
}

impl CacheConfig {
    /// An entry-count-only policy: no byte budget, no TTL.
    pub fn entries(capacity: usize) -> CacheConfig {
        CacheConfig {
            capacity,
            max_bytes: 0,
            ttl: None,
        }
    }
}

/// Approximate heap footprint of a cached pattern list: the entry
/// vector plus each itemset's item storage. Deliberately a stable
/// arithmetic model (not allocator-measured) so budget-driven eviction
/// behaves identically across platforms.
pub fn approx_bytes(patterns: &[ItemsetCount]) -> usize {
    patterns
        .iter()
        .fold(std::mem::size_of_val(patterns), |acc, p| {
            acc + p.items.len() * std::mem::size_of::<u32>()
        })
}

struct Entry {
    patterns: Arc<Vec<ItemsetCount>>,
    checksum: u64,
    stamp: u64,
    inserted: Instant,
    bytes: usize,
}

/// A bounded LRU map from [`CacheKey`] to a complete pattern list.
/// Not internally synchronized — the service wraps it in a `Mutex`.
pub struct ResultCache {
    cfg: CacheConfig,
    clock: u64,
    bytes: usize,
    map: BTreeMap<CacheKey, Entry>,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` results (`0` disables
    /// caching entirely), with no byte budget or TTL.
    pub fn new(capacity: usize) -> Self {
        Self::with_config(CacheConfig::entries(capacity))
    }

    /// An empty cache under the full [`CacheConfig`] policy.
    pub fn with_config(cfg: CacheConfig) -> Self {
        ResultCache {
            cfg,
            clock: 0,
            bytes: 0,
            map: BTreeMap::new(),
        }
    }

    /// Looks `key` up, verifying the entry's TTL and checksum; a
    /// verified hit refreshes its recency, an expired or corrupted
    /// entry is dropped on the spot.
    pub fn probe(&mut self, key: &CacheKey) -> Lookup {
        self.clock += 1;
        let clock = self.clock;
        if let Some(ttl) = self.cfg.ttl {
            let stale = self
                .map
                .get(key)
                .is_some_and(|e| e.inserted.elapsed() >= ttl);
            if stale {
                self.remove(key);
                return Lookup::Expired;
            }
        }
        let Some(e) = self.map.get_mut(key) else {
            return Lookup::Miss;
        };
        // Chaos injection site: flip bytes of the cached list *before*
        // the integrity check, exactly where rot would land. Only
        // compiled under this crate's `chaos` feature — the Arc
        // copy-on-write is not free, so the production probe path must
        // not carry it.
        #[cfg(feature = "chaos")]
        {
            let _ = fpm::faults::corrupt_patterns(Arc::make_mut(&mut e.patterns));
        }
        if checksum(&e.patterns) != e.checksum {
            self.remove(key);
            return Lookup::Corrupt;
        }
        e.stamp = clock;
        Lookup::Hit(Arc::clone(&e.patterns))
    }

    /// [`probe`](ResultCache::probe) collapsed to an `Option`: corrupt
    /// and expired entries read as misses (they have already been
    /// dropped).
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<Vec<ItemsetCount>>> {
        match self.probe(key) {
            Lookup::Hit(patterns) => Some(patterns),
            Lookup::Corrupt | Lookup::Expired | Lookup::Miss => None,
        }
    }

    fn remove(&mut self, key: &CacheKey) {
        if let Some(e) = self.map.remove(key) {
            self.bytes -= e.bytes;
        }
    }

    /// Evicts the least-recently-used entry; `false` when empty.
    fn evict_lru(&mut self) -> bool {
        let Some(oldest) = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.stamp)
            .map(|(k, _)| *k)
        else {
            return false;
        };
        self.remove(&oldest);
        true
    }

    /// Inserts a complete result, evicting least-recently-used entries
    /// until both the entry-count bound and the byte budget hold.
    /// Returns the number of evictions. A result larger than the whole
    /// byte budget is not cached (and evicts nothing).
    pub fn insert(&mut self, key: CacheKey, patterns: Arc<Vec<ItemsetCount>>) -> u64 {
        if self.cfg.capacity == 0 {
            return 0;
        }
        let bytes = approx_bytes(&patterns);
        if self.cfg.max_bytes > 0 && bytes > self.cfg.max_bytes {
            return 0;
        }
        self.clock += 1;
        // Overwrites release the old entry's budget before any
        // eviction decision is made.
        self.remove(&key);
        let mut evicted = 0;
        while self.map.len() >= self.cfg.capacity
            || (self.cfg.max_bytes > 0 && self.bytes + bytes > self.cfg.max_bytes)
        {
            if !self.evict_lru() {
                break;
            }
            evicted += 1;
        }
        let sum = checksum(&patterns);
        self.bytes += bytes;
        self.map.insert(
            key,
            Entry {
                patterns,
                checksum: sum,
                stamp: self.clock,
                inserted: Instant::now(),
                bytes,
            },
        );
        evicted
    }

    /// Test support: mutates the cached pattern list for `key` in place
    /// *without* refreshing its checksum — simulating rot between
    /// insert and probe. Returns `false` when the key is absent.
    #[doc(hidden)]
    pub fn tamper(&mut self, key: &CacheKey, f: impl FnOnce(&mut Vec<ItemsetCount>)) -> bool {
        match self.map.get_mut(key) {
            Some(e) => {
                f(Arc::make_mut(&mut e.patterns));
                true
            }
            None => false,
        }
    }

    /// Test support: backdates the entry for `key` by `by`, simulating
    /// the passage of wall-clock time against the TTL without sleeping.
    /// Returns `false` when the key is absent.
    #[doc(hidden)]
    pub fn age(&mut self, key: &CacheKey, by: Duration) -> bool {
        match self.map.get_mut(key) {
            Some(e) => {
                e.inserted = e.inserted.checked_sub(by).unwrap_or(e.inserted);
                true
            }
            None => false,
        }
    }

    /// Approximate heap bytes currently held ([`approx_bytes`] summed
    /// over entries).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The live entries, in key order (the map is a `BTreeMap`, so the
    /// order is deterministic — R3). The store flush walks this to
    /// persist a shard's cache partition; entries are yielded as-is,
    /// without touching LRU stamps or TTL clocks.
    pub fn entries(&self) -> impl Iterator<Item = (&CacheKey, &Arc<Vec<ItemsetCount>>)> {
        self.map.iter().map(|(k, e)| (k, &e.patterns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pats(n: u64) -> Arc<Vec<ItemsetCount>> {
        Arc::new(vec![ItemsetCount {
            items: vec![n as u32],
            support: n,
        }])
    }

    /// The historical 3-tuple key padded with the identity query.
    fn k(fingerprint: u64, kernel: u8, minsup: u64) -> CacheKey {
        (fingerprint, kernel, minsup, QueryKey::default())
    }

    #[test]
    fn fingerprint_distinguishes_contents() {
        let a = TransactionDb::from_transactions(vec![vec![1, 2], vec![3]]);
        let b = TransactionDb::from_transactions(vec![vec![1], vec![2, 3]]);
        let c = TransactionDb::from_transactions(vec![vec![1, 2], vec![3]]);
        assert_ne!(fingerprint(&a), fingerprint(&b), "same items, split differently");
        assert_eq!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ResultCache::new(2);
        assert_eq!(c.insert(k(1, 0, 1), pats(1)), 0);
        assert_eq!(c.insert(k(2, 0, 1), pats(2)), 0);
        assert!(c.get(&k(1, 0, 1)).is_some()); // refresh key 1
        assert_eq!(c.insert(k(3, 0, 1), pats(3)), 1); // evicts key 2
        assert!(c.get(&k(2, 0, 1)).is_none());
        assert!(c.get(&k(1, 0, 1)).is_some());
        assert!(c.get(&k(3, 0, 1)).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_does_not_evict() {
        let mut c = ResultCache::new(1);
        assert_eq!(c.insert(k(1, 0, 1), pats(1)), 0);
        assert_eq!(c.insert(k(1, 0, 1), pats(9)), 0, "same key: overwrite in place");
        assert_eq!(c.get(&k(1, 0, 1)).unwrap()[0].support, 9);
    }

    #[test]
    fn corrupted_entry_is_dropped_not_served() {
        // Satellite: serve::cache poisoning. A flipped byte must read
        // as Corrupt (then a miss — the service re-mines), never as a
        // hit serving the poisoned list.
        let mut c = ResultCache::new(4);
        c.insert(k(1, 0, 1), pats(1));
        assert!(c.tamper(&k(1, 0, 1), |p| p[0].support ^= 1));
        assert!(
            matches!(c.probe(&k(1, 0, 1)), Lookup::Corrupt),
            "checksum mismatch must surface as Corrupt"
        );
        assert!(c.is_empty(), "the poisoned entry is gone");
        assert!(
            matches!(c.probe(&k(1, 0, 1)), Lookup::Miss),
            "subsequent probes are plain misses"
        );
    }

    #[test]
    fn truncated_entry_is_dropped_not_served() {
        let mut c = ResultCache::new(4);
        let full = Arc::new(vec![
            ItemsetCount { items: vec![1], support: 3 },
            ItemsetCount { items: vec![1, 2], support: 2 },
            ItemsetCount { items: vec![2], support: 2 },
        ]);
        c.insert(k(7, 1, 2), Arc::clone(&full));
        assert!(c.tamper(&k(7, 1, 2), |p| p.truncate(1)));
        assert!(matches!(c.probe(&k(7, 1, 2)), Lookup::Corrupt));
        // Re-inserting a fresh complete result heals the slot.
        c.insert(k(7, 1, 2), Arc::clone(&full));
        match c.probe(&k(7, 1, 2)) {
            Lookup::Hit(got) => assert_eq!(got, full),
            other => panic!("want a verified hit, got {other:?}"),
        }
    }

    #[test]
    fn item_flip_in_any_position_is_detected() {
        let mut c = ResultCache::new(4);
        for victim in 0..3usize {
            let patterns = Arc::new(vec![
                ItemsetCount { items: vec![1], support: 3 },
                ItemsetCount { items: vec![1, 2], support: 2 },
                ItemsetCount { items: vec![2], support: 2 },
            ]);
            c.insert(k(9, 2, 1), patterns);
            assert!(c.tamper(&k(9, 2, 1), |p| p[victim].items[0] ^= 1));
            assert!(
                matches!(c.probe(&k(9, 2, 1)), Lookup::Corrupt),
                "victim={victim}"
            );
        }
    }

    #[test]
    fn distinct_queries_occupy_distinct_slots() {
        use fpm::types::MineKind;
        use fpm::PatternQuery;
        let mut c = ResultCache::new(8);
        let all = PatternQuery::all().key();
        let closed = PatternQuery::class(MineKind::Closed).key();
        let topk = PatternQuery::all().top_k(5).key();
        assert_eq!(all, QueryKey::default(), "identity query is the default key");
        c.insert((1, 0, 2, all), pats(1));
        c.insert((1, 0, 2, closed), pats(2));
        c.insert((1, 0, 2, topk), pats(3));
        assert_eq!(c.len(), 3, "same (fp, kernel, minsup), three query slots");
        assert_eq!(c.get(&(1, 0, 2, all)).unwrap()[0].support, 1);
        assert_eq!(c.get(&(1, 0, 2, closed)).unwrap()[0].support, 2);
        assert_eq!(c.get(&(1, 0, 2, topk)).unwrap()[0].support, 3);
    }

    #[test]
    fn checksum_is_content_determined() {
        let a = vec![ItemsetCount { items: vec![1, 2], support: 3 }];
        let b = vec![ItemsetCount { items: vec![1, 2], support: 3 }];
        assert_eq!(checksum(&a), checksum(&b));
        let c = vec![ItemsetCount { items: vec![1, 2], support: 4 }];
        assert_ne!(checksum(&a), checksum(&c));
        assert_ne!(checksum(&a), checksum(&[]));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        assert_eq!(c.insert(k(1, 0, 1), pats(1)), 0);
        assert!(c.get(&k(1, 0, 1)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn ttl_expired_entry_reads_as_expired_then_miss() {
        let mut c = ResultCache::with_config(CacheConfig {
            capacity: 4,
            max_bytes: 0,
            ttl: Some(Duration::from_secs(60)),
        });
        c.insert(k(1, 0, 1), pats(1));
        assert!(
            matches!(c.probe(&k(1, 0, 1)), Lookup::Hit(_)),
            "fresh entry serves"
        );
        assert!(c.age(&k(1, 0, 1), Duration::from_secs(61)));
        assert!(
            matches!(c.probe(&k(1, 0, 1)), Lookup::Expired),
            "an entry past its TTL must not serve"
        );
        assert!(c.is_empty(), "the expired entry is gone");
        assert!(matches!(c.probe(&k(1, 0, 1)), Lookup::Miss));
        assert_eq!(c.bytes(), 0, "expiry releases the byte budget");
    }

    #[test]
    fn fresh_entries_survive_a_ttl_probe() {
        let mut c = ResultCache::with_config(CacheConfig {
            capacity: 4,
            max_bytes: 0,
            ttl: Some(Duration::from_secs(60)),
        });
        c.insert(k(1, 0, 1), pats(1));
        assert!(c.age(&k(1, 0, 1), Duration::from_secs(30)));
        assert!(matches!(c.probe(&k(1, 0, 1)), Lookup::Hit(_)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn byte_budget_evicts_lru_until_the_insert_fits() {
        let one = approx_bytes(&pats(0));
        let mut c = ResultCache::with_config(CacheConfig {
            capacity: 100,
            max_bytes: one * 2,
            ttl: None,
        });
        assert_eq!(c.insert(k(1, 0, 1), pats(1)), 0);
        assert_eq!(c.insert(k(2, 0, 1), pats(2)), 0);
        assert_eq!(c.bytes(), one * 2);
        assert!(c.get(&k(1, 0, 1)).is_some()); // refresh key 1
        assert_eq!(c.insert(k(3, 0, 1), pats(3)), 1, "budget full: evict LRU");
        assert!(c.get(&k(2, 0, 1)).is_none(), "key 2 was least recent");
        assert!(c.get(&k(1, 0, 1)).is_some());
        assert_eq!(c.bytes(), one * 2);
    }

    #[test]
    fn oversized_result_is_not_cached_and_evicts_nothing() {
        let one = approx_bytes(&pats(0));
        let mut c = ResultCache::with_config(CacheConfig {
            capacity: 100,
            max_bytes: one,
            ttl: None,
        });
        c.insert(k(1, 0, 1), pats(1));
        let big = Arc::new(vec![
            ItemsetCount { items: vec![1], support: 1 },
            ItemsetCount { items: vec![2], support: 1 },
        ]);
        assert!(approx_bytes(&big) > one);
        assert_eq!(c.insert(k(2, 0, 1), big), 0);
        assert!(c.get(&k(2, 0, 1)).is_none(), "over-budget result skipped");
        assert!(c.get(&k(1, 0, 1)).is_some(), "resident entry untouched");
    }

    #[test]
    fn overwrite_releases_the_old_entrys_bytes() {
        let mut c = ResultCache::with_config(CacheConfig {
            capacity: 4,
            max_bytes: 4096,
            ttl: None,
        });
        let big = Arc::new(vec![
            ItemsetCount { items: vec![1, 2, 3], support: 1 },
            ItemsetCount { items: vec![2], support: 1 },
        ]);
        c.insert(k(1, 0, 1), big);
        c.insert(k(1, 0, 1), pats(1));
        assert_eq!(c.bytes(), approx_bytes(&pats(1)));
    }
}
