//! Result cache: repeated queries skip mining entirely.
//!
//! Keyed by `(dataset fingerprint, kernel, min_support)` — the three
//! inputs that determine a miner's output exactly. Only *complete,
//! untruncated* runs are inserted, so a hit can serve any request
//! (budget-limited callers get a prefix of the cached list, which is by
//! construction the same prefix a fresh truncated run would emit).
//!
//! Eviction is least-recently-used via a monotonic stamp; the map is a
//! `BTreeMap` so iteration during eviction is deterministic (the R3
//! `deterministic-iteration` rule of the emission path).

use fpm::{ItemsetCount, TransactionDb};
use std::collections::BTreeMap;
use std::sync::Arc;

/// `(dataset fingerprint, kernel code, min_support)`.
pub type CacheKey = (u64, u8, u64);

/// FNV-1a over the full transaction content — shape and items — so two
/// datasets collide only with 64-bit-hash probability. Deterministic
/// across runs and platforms.
pub fn fingerprint(db: &TransactionDb) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(db.len() as u64);
    for t in db.transactions() {
        eat(t.len() as u64);
        for &item in t {
            eat(item as u64);
        }
    }
    h
}

struct Entry {
    patterns: Arc<Vec<ItemsetCount>>,
    stamp: u64,
}

/// A bounded LRU map from [`CacheKey`] to a complete pattern list.
/// Not internally synchronized — the service wraps it in a `Mutex`.
pub struct ResultCache {
    capacity: usize,
    clock: u64,
    map: BTreeMap<CacheKey, Entry>,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` results (`0` disables
    /// caching entirely).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            clock: 0,
            map: BTreeMap::new(),
        }
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<Vec<ItemsetCount>>> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).map(|e| {
            e.stamp = clock;
            Arc::clone(&e.patterns)
        })
    }

    /// Inserts a complete result, evicting the least-recently-used
    /// entry if the cache is full. Returns the number of evictions
    /// (0 or 1).
    pub fn insert(&mut self, key: CacheKey, patterns: Arc<Vec<ItemsetCount>>) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        self.clock += 1;
        let mut evicted = 0;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
            {
                self.map.remove(&oldest);
                evicted = 1;
            }
        }
        self.map.insert(
            key,
            Entry {
                patterns,
                stamp: self.clock,
            },
        );
        evicted
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pats(n: u64) -> Arc<Vec<ItemsetCount>> {
        Arc::new(vec![ItemsetCount {
            items: vec![n as u32],
            support: n,
        }])
    }

    #[test]
    fn fingerprint_distinguishes_contents() {
        let a = TransactionDb::from_transactions(vec![vec![1, 2], vec![3]]);
        let b = TransactionDb::from_transactions(vec![vec![1], vec![2, 3]]);
        let c = TransactionDb::from_transactions(vec![vec![1, 2], vec![3]]);
        assert_ne!(fingerprint(&a), fingerprint(&b), "same items, split differently");
        assert_eq!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ResultCache::new(2);
        assert_eq!(c.insert((1, 0, 1), pats(1)), 0);
        assert_eq!(c.insert((2, 0, 1), pats(2)), 0);
        assert!(c.get(&(1, 0, 1)).is_some()); // refresh key 1
        assert_eq!(c.insert((3, 0, 1), pats(3)), 1); // evicts key 2
        assert!(c.get(&(2, 0, 1)).is_none());
        assert!(c.get(&(1, 0, 1)).is_some());
        assert!(c.get(&(3, 0, 1)).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_does_not_evict() {
        let mut c = ResultCache::new(1);
        assert_eq!(c.insert((1, 0, 1), pats(1)), 0);
        assert_eq!(c.insert((1, 0, 1), pats(9)), 0, "same key: overwrite in place");
        assert_eq!(c.get(&(1, 0, 1)).unwrap()[0].support, 9);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        assert_eq!(c.insert((1, 0, 1), pats(1)), 0);
        assert!(c.get(&(1, 0, 1)).is_none());
        assert!(c.is_empty());
    }
}
