//! Request/response model of the mining service and its JSON codec.
//!
//! One request names a dataset, a kernel, and a support threshold, plus
//! the service-level limits (deadline, pattern budget); one response
//! reports an [`Outcome`], the patterns (or just their count), and the
//! per-request statistics. The same structs travel over both frontends:
//! in-process callers hold them directly, the line protocol maps them
//! through [`parse_request`] / [`render_response`].

use crate::json::{self, num, Json};
use fpm::types::MineKind;
use fpm::{ItemsetCount, PatternQuery, RuleSpec, TransactionDb};
use quest::{Dataset, Scale};
use std::sync::Arc;
use std::time::Duration;

// The kernel taxonomy moved into the substrate (`fpm::Kernel`) so the
// executor, CLI, and service all dispatch over one enum; re-exported
// here because `serve::Kernel` is this crate's wire vocabulary.
pub use fpm::Kernel;

/// Where the transactions come from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetSpec {
    /// Transactions shipped inline with the request.
    Inline(Vec<Vec<u32>>),
    /// One of the paper's evaluation datasets, generated on demand and
    /// cached inside the service (deterministic generators).
    Named {
        /// Which Table 6 dataset.
        dataset: Dataset,
        /// Reproduction scale.
        scale: Scale,
    },
    /// A FIMI `.dat` file on the server's filesystem.
    Path(String),
}

impl DatasetSpec {
    /// Loads/generates the transactions. `Err` carries a caller-visible
    /// reason (the request is rejected, the server keeps running).
    pub fn resolve(&self) -> Result<TransactionDb, String> {
        match self {
            DatasetSpec::Inline(rows) => Ok(TransactionDb::from_transactions(rows.clone())),
            DatasetSpec::Named { dataset, scale } => Ok(dataset.generate(*scale)),
            DatasetSpec::Path(path) => {
                fpm::io::read_dat_file(path).map_err(|e| format!("cannot read {path:?}: {e}"))
            }
        }
    }
}

/// One mining query.
#[derive(Debug, Clone, PartialEq)]
pub struct MineRequest {
    /// The input transactions.
    pub dataset: DatasetSpec,
    /// The kernel to run.
    pub kernel: Kernel,
    /// Minimum support (absolute count).
    pub min_support: u64,
    /// Which slice of the frequent set to answer with (class, top-k,
    /// rule thresholds — DESIGN.md §15). The default is the identity
    /// (every frequent itemset), which keeps the pre-query wire shape
    /// valid unchanged. Part of the cache/single-flight key.
    pub query: PatternQuery,
    /// Wall-clock limit, armed at *submit* time — queue wait counts
    /// against it, as a caller experiences latency.
    pub deadline: Option<Duration>,
    /// Emitted-pattern budget; the response is truncated to a prefix of
    /// the serial emission order once it is reached.
    pub max_patterns: Option<u64>,
    /// `false` returns only the count (and statistics), not the
    /// patterns themselves.
    pub include_patterns: bool,
}

impl MineRequest {
    /// A request with no limits, returning the full pattern list.
    pub fn new(dataset: DatasetSpec, kernel: Kernel, min_support: u64) -> Self {
        MineRequest {
            dataset,
            kernel,
            min_support,
            query: PatternQuery::all(),
            deadline: None,
            max_patterns: None,
            include_patterns: true,
        }
    }

    /// Replaces the request's pattern query.
    pub fn with_query(mut self, query: PatternQuery) -> Self {
        self.query = query;
        self
    }
}

/// How a request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The full answer (possibly budget-truncated — see
    /// [`MineStats::truncated`]) was produced.
    Complete,
    /// The caller cancelled mid-run; patterns are a prefix of the
    /// serial emission order.
    Cancelled,
    /// The deadline passed before mining finished; patterns are a
    /// prefix of the serial emission order.
    DeadlineExceeded,
    /// The service refused to mine (queue full, admission bound, bad
    /// dataset); see [`MineResponse::reason`].
    Rejected,
    /// The service lost the run — a mining task panicked mid-run (the
    /// worker caught the unwind), or the worker itself failed at pickup
    /// (the chaos shard-stall site's panic flavor). The service keeps
    /// running and the patterns (when included) are still a clean
    /// prefix of the serial emission order — everything delivered
    /// before the failure point, possibly empty.
    Failed,
}

impl Outcome {
    /// The wire label.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Complete => "complete",
            Outcome::Cancelled => "cancelled",
            Outcome::DeadlineExceeded => "deadline_exceeded",
            Outcome::Rejected => "rejected",
            Outcome::Failed => "failed",
        }
    }

    /// Parses a wire label.
    pub fn by_label(label: &str) -> Option<Outcome> {
        match label {
            "complete" => Some(Outcome::Complete),
            "cancelled" => Some(Outcome::Cancelled),
            "deadline_exceeded" => Some(Outcome::DeadlineExceeded),
            "rejected" => Some(Outcome::Rejected),
            "failed" => Some(Outcome::Failed),
            _ => None,
        }
    }
}

/// Per-request observability, echoed in every response.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MineStats {
    /// Patterns delivered (equals `patterns.len()` when included).
    pub emitted: u64,
    /// `true` when the pattern budget cut the output short (the outcome
    /// stays [`Outcome::Complete`]: the prefix *is* the answer asked
    /// for).
    pub truncated: bool,
    /// `true` when the result came from the cache without mining.
    pub cache_hit: bool,
    /// `true` when the request attached to another identical in-flight
    /// request (single-flight) and was answered from that run's result
    /// without mining itself.
    pub coalesced: bool,
    /// Milliseconds spent queued before a worker picked the job up.
    pub queue_ms: u64,
    /// Milliseconds spent resolving the dataset + mining.
    pub mine_ms: u64,
    /// Microseconds from submit to the response being sent — the
    /// latency a caller experiences, at the resolution the loadgen
    /// percentiles are computed from.
    pub service_us: u64,
    /// The admission-control candidate bound computed for this request
    /// (0 when it was not computed — cache hits and early rejects).
    pub candidate_bound: f64,
}

/// The answer to one [`MineRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct MineResponse {
    /// How the request ended.
    pub outcome: Outcome,
    /// Frequent itemsets in the kernel's serial emission order —
    /// `None` when the request asked for counts only, or on rejection.
    pub patterns: Option<Arc<Vec<ItemsetCount>>>,
    /// Number of patterns delivered.
    pub count: u64,
    /// Human-readable cause, set for [`Outcome::Rejected`] and
    /// [`Outcome::Failed`].
    pub reason: Option<String>,
    /// Per-request statistics.
    pub stats: MineStats,
}

impl MineResponse {
    /// A rejection with `reason` and otherwise-empty fields.
    pub fn rejected(reason: impl Into<String>, stats: MineStats) -> Self {
        MineResponse {
            outcome: Outcome::Rejected,
            patterns: None,
            count: 0,
            reason: Some(reason.into()),
            stats,
        }
    }
}

/// Parses one request line of the wire protocol. The shape is
///
/// ```json
/// {"dataset": {"inline": [[1,2,3],[1,2]]},
///  "kernel": "lcm", "min_support": 2,
///  "deadline_ms": 250, "max_patterns": 1000, "include_patterns": true}
/// ```
///
/// with `{"name": "ds1", "scale": "smoke"}` or `{"path": "db.dat"}` as
/// the other dataset forms. `deadline_ms`, `max_patterns`, and
/// `include_patterns` are optional, as are the query fields:
/// `"class"` (`"all"` / `"closed"` / `"maximal"`), `"top_k"`
/// (non-negative integer), and `"rules"` (an object with numeric
/// `"min_confidence"` and optional `"min_lift"`). Absent query fields
/// mean the identity query — the pre-query wire shape parses to the
/// same request it always did.
pub fn parse_request(line: &str) -> Result<MineRequest, String> {
    let v = json::parse(line)?;
    let dataset = v.get("dataset").ok_or("missing \"dataset\"")?;
    let dataset = if let Some(rows) = dataset.get("inline") {
        let rows = rows.as_arr().ok_or("\"inline\" must be an array")?;
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            let row = row.as_arr().ok_or("\"inline\" rows must be arrays")?;
            let mut t = Vec::with_capacity(row.len());
            for item in row {
                let item = item.as_u64().ok_or("items must be non-negative integers")?;
                t.push(u32::try_from(item).map_err(|_| format!("item {item} exceeds u32"))?);
            }
            out.push(t);
        }
        DatasetSpec::Inline(out)
    } else if let Some(name) = dataset.get("name") {
        let name = name.as_str().ok_or("\"name\" must be a string")?;
        let ds = Dataset::by_label(name).ok_or_else(|| format!("unknown dataset {name:?}"))?;
        let scale = match dataset.get("scale") {
            None => Scale::Smoke,
            Some(s) => {
                let s = s.as_str().ok_or("\"scale\" must be a string")?;
                Scale::by_label(s).ok_or_else(|| format!("unknown scale {s:?}"))?
            }
        };
        DatasetSpec::Named { dataset: ds, scale }
    } else if let Some(path) = dataset.get("path") {
        DatasetSpec::Path(path.as_str().ok_or("\"path\" must be a string")?.to_string())
    } else {
        return Err("\"dataset\" needs one of \"inline\", \"name\", \"path\"".into());
    };

    let kernel = v
        .get("kernel")
        .and_then(Json::as_str)
        .ok_or("missing \"kernel\"")?;
    let kernel = Kernel::by_label(kernel).ok_or_else(|| format!("unknown kernel {kernel:?}"))?;
    let min_support = v
        .get("min_support")
        .and_then(Json::as_u64)
        .ok_or("missing or invalid \"min_support\"")?;
    let deadline = match v.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(d) => Some(Duration::from_millis(
            d.as_u64().ok_or("\"deadline_ms\" must be a non-negative integer")?,
        )),
    };
    let max_patterns = match v.get("max_patterns") {
        None | Some(Json::Null) => None,
        Some(m) => Some(m.as_u64().ok_or("\"max_patterns\" must be a non-negative integer")?),
    };
    let include_patterns = match v.get("include_patterns") {
        None => true,
        Some(b) => b.as_bool().ok_or("\"include_patterns\" must be a boolean")?,
    };
    let class = match v.get("class") {
        None | Some(Json::Null) => MineKind::All,
        Some(c) => {
            let c = c.as_str().ok_or("\"class\" must be a string")?;
            MineKind::by_label(c).ok_or_else(|| format!("unknown class {c:?}"))?
        }
    };
    let top_k = match v.get("top_k") {
        None | Some(Json::Null) => None,
        Some(k) => Some(k.as_u64().ok_or("\"top_k\" must be a non-negative integer")?),
    };
    let rules = match v.get("rules") {
        None | Some(Json::Null) => None,
        Some(r) => {
            let min_confidence = r
                .get("min_confidence")
                .and_then(Json::as_f64)
                .ok_or("\"rules\" needs numeric \"min_confidence\"")?;
            let min_lift = match r.get("min_lift") {
                None | Some(Json::Null) => 0.0,
                Some(l) => l.as_f64().ok_or("\"min_lift\" must be numeric")?,
            };
            if !(0.0..=1.0).contains(&min_confidence) {
                return Err("\"min_confidence\" must be in [0, 1]".into());
            }
            if !min_lift.is_finite() || min_lift < 0.0 {
                return Err("\"min_lift\" must be finite and non-negative".into());
            }
            Some(RuleSpec {
                min_confidence,
                min_lift,
            })
        }
    };
    Ok(MineRequest {
        dataset,
        kernel,
        min_support,
        query: PatternQuery {
            class,
            top_k,
            rules,
        },
        deadline,
        max_patterns,
        include_patterns,
    })
}

/// Renders one response line of the wire protocol (no trailing newline).
pub fn render_response(resp: &MineResponse) -> String {
    let mut members = vec![
        ("outcome".to_string(), Json::Str(resp.outcome.label().into())),
        ("count".to_string(), num(resp.count)),
    ];
    if let Some(reason) = &resp.reason {
        members.push(("reason".to_string(), Json::Str(reason.clone())));
    }
    if let Some(patterns) = &resp.patterns {
        let arr = patterns
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    (
                        "items".to_string(),
                        Json::Arr(p.items.iter().map(|&i| num(i as u64)).collect()),
                    ),
                    ("support".to_string(), num(p.support)),
                ])
            })
            .collect();
        members.push(("patterns".to_string(), Json::Arr(arr)));
    }
    let s = &resp.stats;
    members.push((
        "stats".to_string(),
        Json::Obj(vec![
            ("emitted".to_string(), num(s.emitted)),
            ("truncated".to_string(), Json::Bool(s.truncated)),
            ("cache_hit".to_string(), Json::Bool(s.cache_hit)),
            ("coalesced".to_string(), Json::Bool(s.coalesced)),
            ("queue_ms".to_string(), num(s.queue_ms)),
            ("mine_ms".to_string(), num(s.mine_ms)),
            ("service_us".to_string(), num(s.service_us)),
            ("candidate_bound".to_string(), Json::Num(s.candidate_bound)),
        ]),
    ));
    Json::Obj(members).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_inline_request() {
        let r = parse_request(
            r#"{"dataset":{"inline":[[1,2,3],[1,2]]},"kernel":"lcm","min_support":2,
               "deadline_ms":250,"max_patterns":10,"include_patterns":false}"#,
        )
        .unwrap();
        assert_eq!(
            r.dataset,
            DatasetSpec::Inline(vec![vec![1, 2, 3], vec![1, 2]])
        );
        assert_eq!(r.kernel, Kernel::Lcm);
        assert_eq!(r.min_support, 2);
        assert_eq!(r.deadline, Some(Duration::from_millis(250)));
        assert_eq!(r.max_patterns, Some(10));
        assert!(!r.include_patterns);
    }

    #[test]
    fn parses_named_and_path_datasets() {
        let r = parse_request(
            r#"{"dataset":{"name":"ds2","scale":"ci"},"kernel":"eclat","min_support":5}"#,
        )
        .unwrap();
        assert_eq!(
            r.dataset,
            DatasetSpec::Named {
                dataset: Dataset::Ds2,
                scale: Scale::Ci
            }
        );
        assert_eq!(r.deadline, None);
        assert!(r.include_patterns);

        let r = parse_request(
            r#"{"dataset":{"path":"x.dat"},"kernel":"fpgrowth","min_support":1}"#,
        )
        .unwrap();
        assert_eq!(r.dataset, DatasetSpec::Path("x.dat".into()));
        assert_eq!(r.kernel, Kernel::FpGrowth);
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "not json",
            r#"{"kernel":"lcm","min_support":1}"#,
            r#"{"dataset":{"inline":[[1]]},"min_support":1}"#,
            r#"{"dataset":{"inline":[[1]]},"kernel":"nope","min_support":1}"#,
            r#"{"dataset":{"inline":[[1]]},"kernel":"lcm"}"#,
            r#"{"dataset":{"name":"ds9"},"kernel":"lcm","min_support":1}"#,
            r#"{"dataset":{"inline":[[-1]]},"kernel":"lcm","min_support":1}"#,
            r#"{"dataset":{"inline":[[1]]},"kernel":"lcm","min_support":1,"class":"open"}"#,
            r#"{"dataset":{"inline":[[1]]},"kernel":"lcm","min_support":1,"class":3}"#,
            r#"{"dataset":{"inline":[[1]]},"kernel":"lcm","min_support":1,"top_k":-4}"#,
            r#"{"dataset":{"inline":[[1]]},"kernel":"lcm","min_support":1,"rules":{}}"#,
            r#"{"dataset":{"inline":[[1]]},"kernel":"lcm","min_support":1,
               "rules":{"min_confidence":1.5}}"#,
            r#"{"dataset":{"inline":[[1]]},"kernel":"lcm","min_support":1,
               "rules":{"min_confidence":0.5,"min_lift":-1}}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn parses_query_fields_and_defaults_to_identity() {
        // Absent fields: the pre-query wire shape still means "all".
        let r = parse_request(r#"{"dataset":{"inline":[[1]]},"kernel":"lcm","min_support":1}"#)
            .unwrap();
        assert!(r.query.is_all());
        assert_eq!(r.query, PatternQuery::all());

        // Nulls are treated as absent, like deadline_ms/max_patterns.
        let r = parse_request(
            r#"{"dataset":{"inline":[[1]]},"kernel":"lcm","min_support":1,
               "class":null,"top_k":null,"rules":null}"#,
        )
        .unwrap();
        assert!(r.query.is_all());

        let r = parse_request(
            r#"{"dataset":{"inline":[[1,2],[1,2],[2]]},"kernel":"eclat","min_support":1,
               "class":"closed","top_k":5,
               "rules":{"min_confidence":0.6,"min_lift":1.2}}"#,
        )
        .unwrap();
        assert_eq!(r.query.class, MineKind::Closed);
        assert_eq!(r.query.top_k, Some(5));
        let spec = r.query.rules.unwrap();
        assert_eq!(spec.min_confidence, 0.6);
        assert_eq!(spec.min_lift, 1.2);

        // min_lift is optional inside "rules" and defaults to 0 (no
        // lift constraint).
        let r = parse_request(
            r#"{"dataset":{"inline":[[1]]},"kernel":"lcm","min_support":1,
               "class":"maximal","rules":{"min_confidence":0.9}}"#,
        )
        .unwrap();
        assert_eq!(r.query.class, MineKind::Maximal);
        assert_eq!(r.query.rules, Some(RuleSpec::confidence(0.9)));
        assert_eq!(r.query.top_k, None);
    }

    #[test]
    fn renders_response_with_patterns() {
        let resp = MineResponse {
            outcome: Outcome::Complete,
            patterns: Some(Arc::new(vec![ItemsetCount {
                items: vec![1, 2],
                support: 3,
            }])),
            count: 1,
            reason: None,
            stats: MineStats {
                emitted: 1,
                mine_ms: 4,
                candidate_bound: 7.0,
                ..MineStats::default()
            },
        };
        let line = render_response(&resp);
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("outcome").unwrap().as_str(), Some("complete"));
        assert_eq!(v.get("count").unwrap().as_u64(), Some(1));
        let p = &v.get("patterns").unwrap().as_arr().unwrap()[0];
        assert_eq!(p.get("support").unwrap().as_u64(), Some(3));
        let stats = v.get("stats").unwrap();
        assert_eq!(stats.get("candidate_bound").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn outcome_labels_roundtrip() {
        for o in [
            Outcome::Complete,
            Outcome::Cancelled,
            Outcome::DeadlineExceeded,
            Outcome::Rejected,
            Outcome::Failed,
        ] {
            assert_eq!(Outcome::by_label(o.label()), Some(o));
        }
        for k in Kernel::ALL {
            assert_eq!(Kernel::by_label(k.label()), Some(k));
        }
    }
}
