//! Minimal line-oriented JSON — parser and printer.
//!
//! The workspace builds offline against vendored dependency stand-ins
//! (`vendor/serde` is an API stub with no real serialization), so the
//! wire protocol hand-rolls the small JSON subset it needs: objects,
//! arrays, strings, numbers, booleans, null. Objects are backed by a
//! `Vec<(String, Json)>` — insertion-ordered, so rendering is
//! deterministic and the module stays off hash-order iteration entirely
//! (the R3 `deterministic-iteration` guarantee of the emission path).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON has only doubles).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Convenience: a `Json::Num` from a `u64` (exact up to 2^53, far beyond
/// any pattern count or support this service reports).
pub fn num(v: u64) -> Json {
    Json::Num(v as f64)
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Infinity/NaN; the only non-finite number this
        // service produces is an unbounded admission threshold.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        write!(out, "{}", n as i64).expect("write to String cannot fail");
    } else {
        write!(out, "{n}").expect("write to String cannot fail");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write to String cannot fail")
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON value from `input` (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits and sign characters are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|c| c as char)))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // advance over one UTF-8 scalar, not one byte
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let text = r#"{"a":[1,2.5,-3],"b":{"c":"hi\n","d":true,"e":null},"f":false}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.render(), text);
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
    }

    #[test]
    fn whitespace_and_escapes() {
        let v = parse(" { \"k\" :\t[ \"a\\u0041\\\"\" , 10 ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap()[0].as_str(), Some("aA\""));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn u64_conversions() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(num(3).render(), "3");
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse("\"héllo → ∞\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → ∞"));
        assert_eq!(parse(&v.render()).unwrap(), v);
    }
}
