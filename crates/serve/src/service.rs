//! The mining service: bounded worker pool, job queue, admission
//! control, result cache, and per-request metrics.
//!
//! ## Request lifecycle
//!
//! 1. **Submit** ([`MineService::submit`]): the request's [`MineControl`]
//!    is created — arming the deadline *now*, so queue wait counts
//!    against it — and the job enters the bounded queue. A full queue
//!    rejects synchronously (the caller learns immediately, the pool's
//!    latency stays bounded).
//! 2. **Pickup**: a worker pops the job in FIFO order. A control that
//!    tripped while queued (deadline passed, caller cancelled) is
//!    answered without mining — with an *empty* pattern list, which is
//!    the correct zero-length prefix of the serial order.
//! 3. **Cache probe**: complete results are cached by
//!    `(dataset fingerprint, kernel, min_support)`; a hit answers from
//!    memory (budget-limited callers get a prefix of the cached list).
//!    Every entry is checksum-verified on probe — a corrupted entry is
//!    dropped and counted (`cache_integrity_failures`), and the request
//!    falls through to mining as if it had missed.
//! 4. **Admission**: on a miss, the Geerts-style
//!    [`candidate_bound`](fpm::bound::candidate_bound) is computed from
//!    shape facts alone; a bound above the configured ceiling rejects
//!    the request before any mining work is spent.
//! 5. **Mine**: the kernel runs under the control — serial, or on the
//!    work-stealing runtime when [`ServeConfig::mine_threads`] > 1 —
//!    and the stop cause maps to the response [`Outcome`].
//!
//! Every step increments [`MineService::metrics`] counters, so tests
//! (and operators) can verify, e.g., that a cache hit really skipped
//! mining.

use crate::cache::{fingerprint, CacheKey, Lookup, ResultCache};
use crate::request::{DatasetSpec, Kernel, MineRequest, MineResponse, MineStats, Outcome};
use exec::MinePlan;
use fpm::control::{MineControl, StopCause};
use fpm::metrics::MetricSet;
use fpm::{CollectSink, ItemsetCount, TransactionDb};
use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Tuning knobs of one [`MineService`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads draining the job queue (min 1).
    pub workers: usize,
    /// Maximum queued (not yet picked up) jobs; submissions beyond it
    /// are rejected synchronously.
    pub queue_depth: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Admission ceiling: requests whose candidate bound exceeds this
    /// are rejected without mining. `f64::INFINITY` admits everything.
    pub max_candidate_bound: f64,
    /// Threads for one mining run: 0 or 1 = serial in the worker;
    /// n > 1 = the shared work-stealing runtime with n threads.
    pub mine_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_depth: 64,
            cache_capacity: 32,
            max_candidate_bound: f64::INFINITY,
            mine_threads: 0,
        }
    }
}

/// Counter names exported through [`MineService::metrics`].
pub const METRIC_NAMES: &[&str] = &[
    "requests_submitted",
    "requests_completed",
    "requests_cancelled",
    "requests_deadline_exceeded",
    "requests_rejected",
    "requests_failed",
    "rejected_queue_full",
    "rejected_admission",
    "rejected_bad_dataset",
    "cache_probes",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "cache_integrity_failures",
    "mined_runs",
    "patterns_emitted",
];

struct Job {
    request: MineRequest,
    control: Arc<MineControl>,
    submitted: Instant,
    tx: mpsc::Sender<MineResponse>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Inner {
    cfg: ServeConfig,
    queue: Mutex<QueueState>,
    ready: Condvar,
    cache: Mutex<ResultCache>,
    /// Named (generated) datasets, keyed by `(label, scale factor)` —
    /// generating DS1 once per server instead of once per request.
    datasets: Mutex<BTreeMap<(&'static str, usize), Arc<TransactionDb>>>,
    metrics: Arc<MetricSet>,
}

/// A handle to one in-flight request: cancel it, then (or instead)
/// wait for its response.
pub struct Ticket {
    rx: mpsc::Receiver<MineResponse>,
    control: Arc<MineControl>,
}

impl Ticket {
    /// The request's control — shared with the mining run, so
    /// [`MineControl::cancel`] takes effect at the next recursion
    /// checkpoint.
    pub fn control(&self) -> &Arc<MineControl> {
        &self.control
    }

    /// Requests cooperative cancellation.
    pub fn cancel(&self) {
        self.control.cancel();
    }

    /// Blocks until the response arrives.
    pub fn wait(self) -> MineResponse {
        self.rx.recv().unwrap_or_else(|_| {
            MineResponse::rejected("service shut down", MineStats::default())
        })
    }
}

/// The multi-threaded mining service. Cheap to clone (an `Arc` handle);
/// all clones share the queue, cache, and metrics.
#[derive(Clone)]
pub struct MineService {
    inner: Arc<Inner>,
    /// Worker handles, joined by [`MineService::shutdown`].
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl MineService {
    /// Starts the worker pool.
    pub fn start(cfg: ServeConfig) -> Self {
        let inner = Arc::new(Inner {
            cfg,
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            cache: Mutex::new(ResultCache::new(cfg.cache_capacity)),
            datasets: Mutex::new(BTreeMap::new()),
            metrics: Arc::new(MetricSet::new(METRIC_NAMES)),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        MineService {
            inner,
            workers: Arc::new(Mutex::new(workers)),
        }
    }

    /// The service's operational counters (see [`METRIC_NAMES`]).
    pub fn metrics(&self) -> Arc<MetricSet> {
        Arc::clone(&self.inner.metrics)
    }

    /// Enqueues a request. Always returns a [`Ticket`]; queue-full and
    /// post-shutdown rejections are delivered through it so callers have
    /// one uniform wait path.
    pub fn submit(&self, request: MineRequest) -> Ticket {
        let metrics = &self.inner.metrics;
        metrics.incr("requests_submitted");
        let control = Arc::new(MineControl::new(request.deadline, request.max_patterns));
        let (tx, rx) = mpsc::channel();
        let ticket = Ticket {
            rx,
            control: Arc::clone(&control),
        };
        let mut q = self.inner.queue.lock().expect("queue lock poisoned");
        let reject = if q.shutdown {
            Some("service shut down")
        } else if q.jobs.len() >= self.inner.cfg.queue_depth {
            Some("queue full")
        } else {
            None
        };
        if let Some(reason) = reject {
            drop(q);
            metrics.incr("requests_rejected");
            if reason == "queue full" {
                metrics.incr("rejected_queue_full");
            }
            let _ = tx.send(MineResponse::rejected(reason, MineStats::default()));
            return ticket;
        }
        q.jobs.push_back(Job {
            request,
            control,
            submitted: Instant::now(),
            tx,
        });
        drop(q);
        self.inner.ready.notify_one();
        ticket
    }

    /// Submit + wait: the blocking in-process entry point.
    pub fn mine(&self, request: MineRequest) -> MineResponse {
        self.submit(request).wait()
    }

    /// Test support: corrupts the cached result for `(spec, kernel,
    /// min_support)` in place without refreshing its checksum — the
    /// chaos harness's stand-in for rot between insert and probe.
    /// Returns `false` when nothing is cached under that key.
    #[doc(hidden)]
    pub fn tamper_cached(
        &self,
        spec: &DatasetSpec,
        kernel: Kernel,
        min_support: u64,
        f: impl FnOnce(&mut Vec<ItemsetCount>),
    ) -> bool {
        let Ok(db) = resolve_dataset(&self.inner, spec) else {
            return false;
        };
        let key: CacheKey = (fingerprint(&db), kernel.code(), min_support);
        self.inner
            .cache
            .lock()
            .expect("cache lock poisoned")
            .tamper(&key, f)
    }

    /// Stops accepting work, drains the queue, and joins the workers.
    /// Jobs already queued are still answered.
    pub fn shutdown(&self) {
        {
            let mut q = self.inner.queue.lock().expect("queue lock poisoned");
            q.shutdown = true;
        }
        self.inner.ready.notify_all();
        let handles: Vec<JoinHandle<()>> = {
            let mut w = self.workers.lock().expect("worker list lock poisoned");
            w.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut q = inner.queue.lock().expect("queue lock poisoned");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = inner
                    .ready
                    .wait(q)
                    .expect("queue lock poisoned while waiting");
            }
        };
        let response = handle_job(inner, &job);
        let _ = job.tx.send(response);
    }
}

fn handle_job(inner: &Inner, job: &Job) -> MineResponse {
    let metrics = &inner.metrics;
    let queue_ms = job.submitted.elapsed().as_millis() as u64;
    let picked_up = Instant::now();
    let control = &job.control;
    let req = &job.request;
    let mut stats = MineStats {
        queue_ms,
        ..MineStats::default()
    };

    // Tripped while queued: answer without mining. The empty pattern
    // list is the zero-length prefix of the serial emission order.
    if control.should_stop() {
        let outcome = outcome_of(control.stop_cause());
        count_outcome(metrics, outcome);
        return MineResponse {
            outcome,
            patterns: req.include_patterns.then(|| Arc::new(Vec::new())),
            count: 0,
            reason: None,
            stats,
        };
    }

    let db = match resolve_dataset(inner, &req.dataset) {
        Ok(db) => db,
        Err(reason) => {
            metrics.incr("requests_rejected");
            metrics.incr("rejected_bad_dataset");
            return MineResponse::rejected(reason, stats);
        }
    };
    let key: CacheKey = (fingerprint(&db), req.kernel.code(), req.min_support);

    // Cache probe before admission: a cached answer is free to serve no
    // matter how large the search space was. A corrupt entry has been
    // dropped by the probe; treat it as a miss and re-mine.
    metrics.incr("cache_probes");
    let looked = inner.cache.lock().expect("cache lock poisoned").probe(&key);
    match looked {
        Lookup::Hit(full) => {
            metrics.incr("cache_hits");
            stats.cache_hit = true;
            stats.mine_ms = picked_up.elapsed().as_millis() as u64;
            let (patterns, truncated) = match req.max_patterns {
                Some(b) if (b as usize) < full.len() => {
                    (Arc::new(full[..b as usize].to_vec()), true)
                }
                _ => (full, false),
            };
            stats.truncated = truncated;
            stats.emitted = patterns.len() as u64;
            metrics.add("patterns_emitted", stats.emitted);
            metrics.incr("requests_completed");
            return MineResponse {
                outcome: Outcome::Complete,
                count: patterns.len() as u64,
                patterns: req.include_patterns.then_some(patterns),
                reason: None,
                stats,
            };
        }
        Lookup::Corrupt => {
            metrics.incr("cache_integrity_failures");
            metrics.incr("cache_misses");
        }
        Lookup::Miss => metrics.incr("cache_misses"),
    }

    // Admission control: the Geerts-style bound from shape facts alone.
    // The chaos admission-flap site can force the rejection branch for
    // an otherwise admissible request (constant `false` without the
    // `chaos` feature), exercising the same accounting path.
    let bound = fpm::bound::candidate_bound(&db, req.min_support);
    stats.candidate_bound = bound;
    let flap = fpm::faults::admission_flap();
    if flap || bound > inner.cfg.max_candidate_bound {
        metrics.incr("requests_rejected");
        metrics.incr("rejected_admission");
        let reason = if flap {
            format!("admission flap (chaos): candidate bound {bound:.3e} spuriously rejected")
        } else {
            format!(
                "candidate bound {bound:.3e} exceeds admission ceiling {:.3e}",
                inner.cfg.max_candidate_bound
            )
        };
        return MineResponse::rejected(reason, stats);
    }

    metrics.incr("mined_runs");
    let (patterns, fully_merged) = run_kernel(inner, req.kernel, &db, req.min_support, control);
    stats.mine_ms = picked_up.elapsed().as_millis() as u64;
    let cause = control.stop_cause();
    let outcome = outcome_of(cause);
    stats.truncated = cause == Some(StopCause::BudgetExhausted);
    stats.emitted = patterns.len() as u64;
    metrics.add("patterns_emitted", stats.emitted);
    count_outcome(metrics, outcome);

    let patterns = Arc::new(patterns);
    if cause.is_none() && fully_merged {
        let evicted = inner
            .cache
            .lock()
            .expect("cache lock poisoned")
            .insert(key, Arc::clone(&patterns));
        metrics.add("cache_evictions", evicted);
    }
    let reason = (outcome == Outcome::Failed).then(|| {
        "mining task panicked; patterns are the prefix emitted before the failure".to_string()
    });
    MineResponse {
        outcome,
        count: patterns.len() as u64,
        patterns: req.include_patterns.then_some(patterns),
        reason,
        stats,
    }
}

/// Maps a control's stop cause to the response outcome. A budget trip
/// is still `Complete`: the caller asked for at most N patterns and got
/// the first N of the serial order ([`MineStats::truncated`] flags it).
fn outcome_of(cause: Option<StopCause>) -> Outcome {
    match cause {
        None | Some(StopCause::BudgetExhausted) => Outcome::Complete,
        Some(StopCause::Cancelled) => Outcome::Cancelled,
        Some(StopCause::DeadlineExceeded) => Outcome::DeadlineExceeded,
        Some(StopCause::TaskPanicked) => Outcome::Failed,
    }
}

fn count_outcome(metrics: &MetricSet, outcome: Outcome) {
    metrics.incr(match outcome {
        Outcome::Complete => "requests_completed",
        Outcome::Cancelled => "requests_cancelled",
        Outcome::DeadlineExceeded => "requests_deadline_exceeded",
        Outcome::Rejected => "requests_rejected",
        Outcome::Failed => "requests_failed",
    });
}

fn resolve_dataset(inner: &Inner, spec: &DatasetSpec) -> Result<Arc<TransactionDb>, String> {
    match spec {
        DatasetSpec::Named { dataset, scale } => {
            let key = (dataset.label(), scale.factor());
            if let Some(db) = inner
                .datasets
                .lock()
                .expect("dataset cache lock poisoned")
                .get(&key)
            {
                return Ok(Arc::clone(db));
            }
            // Generate outside the lock: generation is the slow part and
            // the generators are deterministic, so a racing duplicate
            // insert is harmless.
            let db = Arc::new(dataset.generate(*scale));
            inner
                .datasets
                .lock()
                .expect("dataset cache lock poisoned")
                .insert(key, Arc::clone(&db));
            Ok(db)
        }
        other => other.resolve().map(Arc::new),
    }
}

fn run_kernel(
    inner: &Inner,
    kernel: Kernel,
    db: &TransactionDb,
    minsup: u64,
    control: &MineControl,
) -> (Vec<ItemsetCount>, bool) {
    // `mine_threads` 0 means "serial in the worker" here (the pool is
    // the parallelism), so it does NOT fall through to the runtime's
    // auto-detection the way `MinePlan::threads(0)` would.
    let mut sink = CollectSink::default();
    let summary = MinePlan::kernel(kernel, minsup)
        .threads(inner.cfg.mine_threads.max(1))
        .execute_controlled(db, control, &mut sink);
    (sink.patterns, summary.complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn toy_spec() -> DatasetSpec {
        DatasetSpec::Inline(vec![
            vec![0, 2, 5],
            vec![1, 2, 5],
            vec![0, 2, 5],
            vec![3, 4],
            vec![0, 1, 2, 3, 4, 5],
        ])
    }

    #[test]
    fn completes_and_matches_serial() {
        let svc = MineService::start(ServeConfig::default());
        for kernel in Kernel::ALL {
            let resp = svc.mine(MineRequest::new(toy_spec(), kernel, 2));
            assert_eq!(resp.outcome, Outcome::Complete, "{}", kernel.label());
            let got = resp.patterns.expect("patterns included by default");
            let db = toy_spec().resolve().unwrap();
            let mut sink = CollectSink::default();
            let summary = MinePlan::kernel(kernel, 2).execute(&db, &mut sink);
            assert!(summary.complete);
            assert_eq!(*got, sink.patterns, "{}", kernel.label());
        }
        svc.shutdown();
    }

    #[test]
    fn budget_truncates_but_stays_complete() {
        let svc = MineService::start(ServeConfig::default());
        let full = svc.mine(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        let mut limited = MineRequest::new(toy_spec(), Kernel::Lcm, 2);
        limited.max_patterns = Some(3);
        let resp = svc.mine(limited);
        assert_eq!(resp.outcome, Outcome::Complete);
        assert!(resp.stats.truncated);
        assert_eq!(resp.count, 3);
        let full = full.patterns.unwrap();
        let got = resp.patterns.unwrap();
        assert_eq!(*got, full[..3], "budget output is a prefix of the full run");
        svc.shutdown();
    }

    #[test]
    fn count_only_omits_patterns() {
        let svc = MineService::start(ServeConfig::default());
        let mut req = MineRequest::new(toy_spec(), Kernel::Eclat, 2);
        req.include_patterns = false;
        let resp = svc.mine(req);
        assert_eq!(resp.outcome, Outcome::Complete);
        assert!(resp.patterns.is_none());
        assert!(resp.count > 0);
        svc.shutdown();
    }

    #[test]
    fn admission_bound_rejects_wide_requests() {
        let svc = MineService::start(ServeConfig {
            max_candidate_bound: 2.0,
            ..ServeConfig::default()
        });
        let resp = svc.mine(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        assert_eq!(resp.outcome, Outcome::Rejected);
        assert!(resp.reason.unwrap().contains("admission ceiling"));
        assert_eq!(svc.metrics().get("rejected_admission"), 1);
        assert_eq!(svc.metrics().get("mined_runs"), 0, "no mining was spent");
        svc.shutdown();
    }

    #[test]
    fn bad_dataset_rejects() {
        let svc = MineService::start(ServeConfig::default());
        let resp = svc.mine(MineRequest::new(
            DatasetSpec::Path("/nonexistent/file.dat".into()),
            Kernel::Lcm,
            2,
        ));
        assert_eq!(resp.outcome, Outcome::Rejected);
        assert_eq!(svc.metrics().get("rejected_bad_dataset"), 1);
        svc.shutdown();
    }

    #[test]
    fn cache_hit_skips_mining() {
        let svc = MineService::start(ServeConfig::default());
        let cold = svc.mine(MineRequest::new(toy_spec(), Kernel::FpGrowth, 2));
        assert!(!cold.stats.cache_hit);
        assert_eq!(svc.metrics().get("mined_runs"), 1);
        let warm = svc.mine(MineRequest::new(toy_spec(), Kernel::FpGrowth, 2));
        assert!(warm.stats.cache_hit);
        assert_eq!(svc.metrics().get("mined_runs"), 1, "second run never mined");
        assert_eq!(svc.metrics().get("cache_hits"), 1);
        assert_eq!(warm.patterns, cold.patterns, "hit is byte-identical");
        svc.shutdown();
    }

    #[test]
    fn cache_hit_serves_budget_prefix() {
        let svc = MineService::start(ServeConfig::default());
        let cold = svc.mine(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        let mut req = MineRequest::new(toy_spec(), Kernel::Lcm, 2);
        req.max_patterns = Some(2);
        let warm = svc.mine(req);
        assert!(warm.stats.cache_hit);
        assert!(warm.stats.truncated);
        assert_eq!(*warm.patterns.unwrap(), cold.patterns.unwrap()[..2]);
        svc.shutdown();
    }

    #[test]
    fn poisoned_cache_entry_triggers_a_remine() {
        // Satellite: service-level cache poisoning. A tampered entry is
        // detected on probe, dropped, and the request re-mines — the
        // poison is never served, and the counters say exactly what
        // happened.
        let svc = MineService::start(ServeConfig::default());
        let cold = svc.mine(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        assert_eq!(cold.outcome, Outcome::Complete);
        assert!(svc.tamper_cached(&toy_spec(), Kernel::Lcm, 2, |p| p[0].support ^= 1));
        let warm = svc.mine(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        assert_eq!(warm.outcome, Outcome::Complete);
        assert!(!warm.stats.cache_hit, "corrupt entry must not serve as a hit");
        assert_eq!(warm.patterns, cold.patterns, "the re-mine restores the truth");
        let m = svc.metrics();
        assert_eq!(m.get("cache_probes"), 2);
        assert_eq!(m.get("cache_hits"), 0);
        assert_eq!(m.get("cache_misses"), 2, "the corrupt probe counts as a miss");
        assert_eq!(m.get("cache_integrity_failures"), 1);
        assert_eq!(m.get("mined_runs"), 2, "the poisoned request really re-mined");
        // The re-mine healed the slot: a third request is a clean hit.
        let third = svc.mine(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        assert!(third.stats.cache_hit);
        assert_eq!(m.get("cache_integrity_failures"), 1, "no new failure");
        svc.shutdown();
    }

    #[test]
    fn queue_full_rejects_synchronously() {
        // Depth 0 makes rejection deterministic regardless of how fast
        // the worker drains.
        let svc = MineService::start(ServeConfig {
            workers: 1,
            queue_depth: 0,
            ..ServeConfig::default()
        });
        let resp = svc.mine(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        assert_eq!(resp.outcome, Outcome::Rejected);
        assert_eq!(resp.reason.as_deref(), Some("queue full"));
        assert_eq!(svc.metrics().get("rejected_queue_full"), 1);
        svc.shutdown();
    }

    #[test]
    fn pre_expired_deadline_answers_without_mining() {
        let svc = MineService::start(ServeConfig::default());
        let mut req = MineRequest::new(toy_spec(), Kernel::Lcm, 2);
        req.deadline = Some(Duration::from_millis(0));
        let resp = svc.mine(req);
        assert_eq!(resp.outcome, Outcome::DeadlineExceeded);
        assert_eq!(resp.count, 0);
        assert_eq!(svc.metrics().get("mined_runs"), 0);
        svc.shutdown();
    }

    #[test]
    fn cancel_before_pickup_yields_cancelled() {
        // Depth 2, one worker: stuff a slow-ish job first so the second
        // is still queued when we cancel it.
        let svc = MineService::start(ServeConfig {
            workers: 1,
            queue_depth: 8,
            cache_capacity: 0,
            ..ServeConfig::default()
        });
        let first = svc.submit(MineRequest::new(
            DatasetSpec::Named {
                dataset: quest::Dataset::Ds1,
                scale: quest::Scale::Smoke,
            },
            Kernel::Lcm,
            30,
        ));
        let second = svc.submit(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        second.cancel();
        let resp = second.wait();
        assert_eq!(resp.outcome, Outcome::Cancelled);
        assert!(resp.count <= 7, "cancelled output is a (possibly empty) prefix");
        let _ = first.wait();
        svc.shutdown();
    }

    #[test]
    fn submit_after_shutdown_rejects() {
        let svc = MineService::start(ServeConfig::default());
        svc.shutdown();
        let resp = svc.mine(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        assert_eq!(resp.outcome, Outcome::Rejected);
        assert_eq!(resp.reason.as_deref(), Some("service shut down"));
    }

    #[test]
    fn named_dataset_generated_once() {
        let svc = MineService::start(ServeConfig::default());
        let spec = DatasetSpec::Named {
            dataset: quest::Dataset::Ds1,
            scale: quest::Scale::Smoke,
        };
        let a = svc.mine(MineRequest::new(spec.clone(), Kernel::Lcm, 60));
        let b = svc.mine(MineRequest::new(spec, Kernel::Lcm, 60));
        assert_eq!(a.outcome, Outcome::Complete);
        assert!(b.stats.cache_hit, "same named dataset: result cache hit");
        svc.shutdown();
    }

    #[test]
    fn parallel_mining_matches_serial_service() {
        let serial = MineService::start(ServeConfig::default());
        let parallel = MineService::start(ServeConfig {
            mine_threads: 3,
            ..ServeConfig::default()
        });
        for kernel in Kernel::ALL {
            let a = serial.mine(MineRequest::new(toy_spec(), kernel, 2));
            let b = parallel.mine(MineRequest::new(toy_spec(), kernel, 2));
            assert_eq!(a.patterns, b.patterns, "{}", kernel.label());
        }
        serial.shutdown();
        parallel.shutdown();
    }
}
