//! The mining service: dataset-sharded worker pools, single-flight
//! request coalescing, admission control, result caches, and
//! per-request metrics.
//!
//! ## Request lifecycle
//!
//! 1. **Route + submit** ([`MineService::submit`]): the request's
//!    dataset spec hashes to a **shard** — every request for the same
//!    dataset lands on the same shard's queue, cache partition, and
//!    metrics. The request's [`MineControl`] is created — arming the
//!    deadline *now*, so queue wait counts against it — and the job
//!    enters that shard's bounded queue. A full queue rejects
//!    synchronously (the caller learns immediately, the pool's latency
//!    stays bounded).
//! 2. **Pickup**: a shard worker pops the job in FIFO order. A control
//!    that tripped while queued (deadline passed, caller cancelled) is
//!    answered without mining — with an *empty* pattern list, which is
//!    the correct zero-length prefix of the serial order.
//! 3. **Cache probe**: complete results are cached per shard by
//!    `(dataset fingerprint, kernel, min_support, query)` — distinct
//!    pattern queries (class, top-k, rules — DESIGN.md §15) occupy
//!    distinct slots; a hit answers from
//!    memory (budget-limited callers get a prefix of the cached list).
//!    Every entry is checksum-verified on probe — a corrupted entry is
//!    dropped and counted (`cache_integrity_failures`), an entry past
//!    its TTL is dropped and counted (`cache_expired`); **both count as
//!    misses**, never hits, and the request falls through to mining.
//! 4. **Admission**: on a miss, the Geerts-style
//!    [`candidate_bound`](fpm::bound::candidate_bound) is computed from
//!    shape facts alone; a bound above the configured ceiling rejects
//!    the request before any mining work is spent.
//! 5. **Single-flight**: an admitted miss checks the shard's in-flight
//!    table. If an identical `(fingerprint, kernel, minsup, query)` run
//!    is already mining, the job *attaches* to it as a follower — no
//!    second mine — and is answered at fan-out. Otherwise the job
//!    registers as the **leader** and mines.
//! 6. **Mine + fan out**: the kernel runs under the leader's control —
//!    serial, or on the work-stealing runtime when
//!    [`ServeConfig::mine_threads`] > 1. A *shareable* result (complete,
//!    untruncated — [`exec::ExecSummary::shareable`]) is cached and then
//!    served to every follower, each under its own budget/include
//!    flags. An unshareable result (cancelled, deadline-cut, failed) is
//!    honest only for the leader whose control tripped; followers are
//!    requeued at the front of the shard queue and run on their own.
//!
//! Every step increments both [`MineService::metrics`] and the owning
//! shard's [`MineService::shard_metrics`] — the per-shard counters sum
//! exactly to the global ones, an invariant the conformance suite
//! property-tests.
//!
//! ## Warm start (DESIGN.md §14)
//!
//! With [`ServeConfig::store_dir`] set, startup scans the directory for
//! persisted artifacts (`fpm-store`): each one that loads cleanly —
//! every section checksum-verified, fingerprint cross-checked against
//! the database rebuilt from its raw section — registers its named
//! dataset (so the first request skips generation) and seeds the owning
//! shard's cache partition with the artifact's generation-live results.
//! A damaged artifact is counted (`store_integrity_failures`) and
//! skipped — the service falls back to the ordinary cold path, which
//! chaos site #7 (`artifact-corruption`) exercises seed by seed.
//! Shutdown flushes each registered dataset's cached results back to
//! the store atomically, so a restart answers previously-cached
//! requests without re-mining.

use crate::cache::{fingerprint, CacheConfig, CacheKey, Lookup, ResultCache};
use crate::request::{DatasetSpec, Kernel, MineRequest, MineResponse, MineStats, Outcome};
use exec::MinePlan;
use fpm::control::{MineControl, StopCause};
use fpm::metrics::MetricSet;
use fpm::{CollectSink, ItemsetCount, QueryKey, TransactionDb};
use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of one [`MineService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Dataset shards (min 1). Requests hash-route by dataset spec;
    /// each shard owns a queue, a cache partition, a worker pool, and
    /// its own metrics.
    pub shards: usize,
    /// Worker threads draining each shard's queue (min 1 per shard).
    pub workers: usize,
    /// Maximum queued (not yet picked up) jobs per shard; submissions
    /// beyond it are rejected synchronously.
    pub queue_depth: usize,
    /// Result-cache capacity in entries, per shard (0 disables caching).
    pub cache_capacity: usize,
    /// Byte budget per shard cache over the approximate heap footprint
    /// of cached results (0 = no byte budget).
    pub cache_max_bytes: usize,
    /// Result time-to-live: cached entries older than this read as
    /// expired (a miss) and re-mine. `None` never expires.
    pub cache_ttl: Option<Duration>,
    /// Admission ceiling: requests whose candidate bound exceeds this
    /// are rejected without mining. `f64::INFINITY` admits everything.
    pub max_candidate_bound: f64,
    /// Threads for one mining run: 0 or 1 = serial in the worker;
    /// n > 1 = the shared work-stealing runtime with n threads.
    pub mine_threads: usize,
    /// Persistent artifact store directory (`fpm-store`). `Some`: boot
    /// warm-starts shard caches from `*.fpa` artifacts found there, and
    /// shutdown flushes each registered named dataset's cached results
    /// back, atomically. `None` (the default): fully in-memory.
    pub store_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 1,
            workers: 2,
            queue_depth: 64,
            cache_capacity: 32,
            cache_max_bytes: 0,
            cache_ttl: None,
            max_candidate_bound: f64::INFINITY,
            mine_threads: 0,
            store_dir: None,
        }
    }
}

/// Counter names exported through [`MineService::metrics`] and each
/// shard's [`MineService::shard_metrics`]. Invariants held at every
/// quiescent point (no request in flight):
///
/// - `requests_submitted` = sum of the five `requests_*` outcome
///   counters;
/// - `cache_probes` = `cache_hits` + `cache_misses`;
/// - `cache_integrity_failures` ≤ `cache_misses`, `cache_expired` ≤
///   `cache_misses` (both are miss subspecies);
/// - `requests_coalesced` = `coalesced_served` + `coalesced_requeued`;
/// - `store_warm_entries` counts cache entries restored at warm start,
///   `store_artifacts_loaded` the artifacts they came from,
///   `store_integrity_failures` the artifacts rejected at load (damage
///   or fingerprint mismatch), and `store_flushed_entries` the cache
///   entries persisted at shutdown;
/// - each global counter = sum of that counter across shards.
pub const METRIC_NAMES: &[&str] = &[
    "requests_submitted",
    "requests_completed",
    "requests_cancelled",
    "requests_deadline_exceeded",
    "requests_rejected",
    "requests_failed",
    "rejected_queue_full",
    "rejected_admission",
    "rejected_bad_dataset",
    "cache_probes",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "cache_integrity_failures",
    "cache_expired",
    "mined_runs",
    "patterns_emitted",
    "singleflight_leaders",
    "requests_coalesced",
    "coalesced_served",
    "coalesced_requeued",
    "store_artifacts_loaded",
    "store_integrity_failures",
    "store_warm_entries",
    "store_flushed_entries",
];

struct Job {
    request: MineRequest,
    control: Arc<MineControl>,
    submitted: Instant,
    tx: mpsc::Sender<MineResponse>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// An in-flight mining run that identical requests attach to.
struct Flight {
    followers: Vec<Job>,
}

/// One dataset shard: queue, workers' condvar, cache partition,
/// single-flight table, and counters.
struct Shard {
    index: usize,
    queue: Mutex<QueueState>,
    ready: Condvar,
    cache: Mutex<ResultCache>,
    inflight: Mutex<BTreeMap<CacheKey, Flight>>,
    metrics: Arc<MetricSet>,
}

struct Inner {
    cfg: ServeConfig,
    shards: Vec<Shard>,
    /// Named (generated) datasets, keyed by `(label, scale factor)` —
    /// generating DS1 once per server instead of once per request.
    /// Shared across shards: the transactions are immutable.
    datasets: Mutex<BTreeMap<(&'static str, usize), Arc<TransactionDb>>>,
    /// Datasets the store layer tracks, keyed by artifact file stem:
    /// the spec plus the artifact generation it was loaded at (0 for
    /// datasets first seen in this process). Shutdown flushes exactly
    /// these. Only populated when `cfg.store_dir` is set.
    store_reg: Mutex<BTreeMap<String, (DatasetSpec, u64)>>,
    metrics: Arc<MetricSet>,
    /// Test gate: while `true`, leaders park right before mining —
    /// giving deterministic tests a window in which followers attach.
    hold: AtomicBool,
}

/// Increments a counter on the global set and the owning shard's set in
/// lockstep, so per-shard sums always equal the global counters.
struct Meters<'a> {
    global: &'a MetricSet,
    shard: &'a MetricSet,
}

impl Meters<'_> {
    fn incr(&self, name: &str) {
        self.global.incr(name);
        self.shard.incr(name);
    }

    fn add(&self, name: &str, n: u64) {
        self.global.add(name, n);
        self.shard.add(name, n);
    }
}

/// A handle to one in-flight request: cancel it, then (or instead)
/// wait for its response.
pub struct Ticket {
    rx: mpsc::Receiver<MineResponse>,
    control: Arc<MineControl>,
}

impl Ticket {
    /// The request's control — shared with the mining run, so
    /// [`MineControl::cancel`] takes effect at the next recursion
    /// checkpoint.
    pub fn control(&self) -> &Arc<MineControl> {
        &self.control
    }

    /// Requests cooperative cancellation.
    pub fn cancel(&self) {
        self.control.cancel();
    }

    /// Blocks until the response arrives.
    pub fn wait(self) -> MineResponse {
        self.rx.recv().unwrap_or_else(|_| {
            MineResponse::rejected("service shut down", MineStats::default())
        })
    }

    /// Non-blocking poll: `Some` once the response has arrived. The
    /// event-driven frontend drives every pending ticket through this.
    pub fn try_wait(&self) -> Option<MineResponse> {
        match self.rx.try_recv() {
            Ok(resp) => Some(resp),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => {
                Some(MineResponse::rejected("service shut down", MineStats::default()))
            }
        }
    }
}

/// The multi-threaded mining service. Cheap to clone (an `Arc` handle);
/// all clones share the shards, caches, and metrics.
#[derive(Clone)]
pub struct MineService {
    inner: Arc<Inner>,
    /// Worker handles, joined by [`MineService::shutdown`].
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl MineService {
    /// Starts the per-shard worker pools.
    pub fn start(cfg: ServeConfig) -> Self {
        let cache_cfg = CacheConfig {
            capacity: cfg.cache_capacity,
            max_bytes: cfg.cache_max_bytes,
            ttl: cfg.cache_ttl,
        };
        let shards: Vec<Shard> = (0..cfg.shards.max(1))
            .map(|index| Shard {
                index,
                queue: Mutex::new(QueueState {
                    jobs: VecDeque::new(),
                    shutdown: false,
                }),
                ready: Condvar::new(),
                cache: Mutex::new(ResultCache::with_config(cache_cfg)),
                inflight: Mutex::new(BTreeMap::new()),
                metrics: Arc::new(MetricSet::new(METRIC_NAMES)),
            })
            .collect();
        let inner = Arc::new(Inner {
            cfg,
            shards,
            datasets: Mutex::new(BTreeMap::new()),
            store_reg: Mutex::new(BTreeMap::new()),
            metrics: Arc::new(MetricSet::new(METRIC_NAMES)),
            hold: AtomicBool::new(false),
        });
        // Warm-start before any worker exists: the caches and dataset
        // registry are seeded while the service is still quiescent, so
        // the very first request can hit.
        if let Some(dir) = inner.cfg.store_dir.clone() {
            warm_start(&inner, &dir);
        }
        let mut workers = Vec::new();
        for shard_idx in 0..inner.shards.len() {
            for _ in 0..inner.cfg.workers.max(1) {
                let inner = Arc::clone(&inner);
                workers.push(std::thread::spawn(move || worker_loop(&inner, shard_idx)));
            }
        }
        MineService {
            inner,
            workers: Arc::new(Mutex::new(workers)),
        }
    }

    /// The service's global operational counters (see [`METRIC_NAMES`]).
    pub fn metrics(&self) -> Arc<MetricSet> {
        Arc::clone(&self.inner.metrics)
    }

    /// One shard's counters; summed over shards they equal
    /// [`metrics`](MineService::metrics) exactly. An out-of-range index
    /// reads as an unshared all-zero set — the honest answer for a
    /// shard that does not exist — rather than panicking.
    pub fn shard_metrics(&self, shard: usize) -> Arc<MetricSet> {
        match self.inner.shards.get(shard) {
            Some(s) => Arc::clone(&s.metrics),
            None => Arc::new(MetricSet::new(METRIC_NAMES)),
        }
    }

    /// Number of shards actually running (`max(1, cfg.shards)`).
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The shard a request for `spec` routes to — a pure function of
    /// the dataset spec, stable across runs and processes.
    pub fn shard_of(&self, spec: &DatasetSpec) -> usize {
        shard_of(spec, self.inner.shards.len())
    }

    /// Enqueues a request on its dataset's shard. Always returns a
    /// [`Ticket`]; queue-full and post-shutdown rejections are delivered
    /// through it so callers have one uniform wait path.
    pub fn submit(&self, request: MineRequest) -> Ticket {
        let control = Arc::new(MineControl::new(request.deadline, request.max_patterns));
        let (tx, rx) = mpsc::channel();
        let ticket = Ticket {
            rx,
            control: Arc::clone(&control),
        };
        let submitted = Instant::now();
        let idx = shard_of(&request.dataset, self.inner.shards.len());
        let Some(shard) = self.inner.shards.get(idx) else {
            // Unreachable by construction (`shard_of` reduces modulo the
            // shard count); reject instead of panicking if routing ever
            // regresses — this is a panic-free path.
            let _ = tx.send(MineResponse::rejected(
                "internal: shard routing out of range",
                MineStats::default(),
            ));
            return ticket;
        };
        let m = Meters {
            global: &self.inner.metrics,
            shard: &shard.metrics,
        };
        m.incr("requests_submitted");
        let mut q = shard.queue.lock().unwrap_or_else(|e| e.into_inner());
        let reject = if q.shutdown {
            Some("service shut down")
        } else if q.jobs.len() >= self.inner.cfg.queue_depth {
            Some("queue full")
        } else {
            None
        };
        if let Some(reason) = reject {
            drop(q);
            m.incr("requests_rejected");
            if reason == "queue full" {
                m.incr("rejected_queue_full");
            }
            let stats = MineStats {
                service_us: submitted.elapsed().as_micros() as u64,
                ..MineStats::default()
            };
            let _ = tx.send(MineResponse::rejected(reason, stats));
            return ticket;
        }
        q.jobs.push_back(Job {
            request,
            control,
            submitted,
            tx,
        });
        drop(q);
        shard.ready.notify_one();
        ticket
    }

    /// Submit + wait: the blocking in-process entry point.
    pub fn mine(&self, request: MineRequest) -> MineResponse {
        self.submit(request).wait()
    }

    /// Test support: while held, leaders park right before mining, so a
    /// test can deterministically pile identical requests onto one
    /// in-flight run (observable via the `requests_coalesced` counter)
    /// before releasing the gate. Never hold this on a service whose
    /// requests carry deadlines.
    #[doc(hidden)]
    pub fn hold_mining(&self, hold: bool) {
        // ORDERING: Relaxed — a test-only spin gate. No data is
        // published through this flag: workers re-check it in a sleep
        // loop and everything a held leader later reads is synchronized
        // by the queue/inflight mutexes, so visibility latency only
        // stretches the gate by a poll interval.
        self.inner.hold.store(hold, Ordering::Relaxed);
    }

    /// Test support: corrupts the cached result for `(spec, kernel,
    /// min_support)`'s **identity-query** slot in place without
    /// refreshing its checksum — the chaos harness's stand-in for rot
    /// between insert and probe. Returns `false` when nothing is cached
    /// under that key.
    #[doc(hidden)]
    pub fn tamper_cached(
        &self,
        spec: &DatasetSpec,
        kernel: Kernel,
        min_support: u64,
        f: impl FnOnce(&mut Vec<ItemsetCount>),
    ) -> bool {
        let Ok(db) = resolve_dataset(&self.inner, spec) else {
            return false;
        };
        let key: CacheKey = (fingerprint(&db), kernel.code(), min_support, QueryKey::default());
        let Some(shard) = self.inner.shards.get(shard_of(spec, self.inner.shards.len())) else {
            return false;
        };
        shard
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .tamper(&key, f)
    }

    /// Test support: backdates the cached result for `(spec, kernel,
    /// min_support)`'s **identity-query** slot by `by`, simulating TTL
    /// passage without sleeping. Returns `false` when nothing is cached
    /// under that key.
    #[doc(hidden)]
    pub fn age_cached(
        &self,
        spec: &DatasetSpec,
        kernel: Kernel,
        min_support: u64,
        by: Duration,
    ) -> bool {
        let Ok(db) = resolve_dataset(&self.inner, spec) else {
            return false;
        };
        let key: CacheKey = (fingerprint(&db), kernel.code(), min_support, QueryKey::default());
        let Some(shard) = self.inner.shards.get(shard_of(spec, self.inner.shards.len())) else {
            return false;
        };
        shard
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .age(&key, by)
    }

    /// Stops accepting work, drains the queues, and joins the workers.
    /// Jobs already queued are still answered. With a store directory
    /// configured, the quiesced caches are then flushed to disk so the
    /// next process warm-starts from them.
    pub fn shutdown(&self) {
        for shard in &self.inner.shards {
            let mut q = shard.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.shutdown = true;
            drop(q);
            shard.ready.notify_all();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut w = self.workers.lock().unwrap_or_else(|e| e.into_inner());
            w.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        // After the join the service is quiescent: no worker mutates a
        // cache, so the flush sees a consistent snapshot.
        flush_store(&self.inner);
    }
}

/// FNV-1a over the dataset spec's identity — cheap (no dataset
/// resolution) and deterministic, so the same spec always routes to the
/// same shard in every process.
fn spec_hash(spec: &DatasetSpec) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat_bytes = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    match spec {
        DatasetSpec::Inline(rows) => {
            eat_bytes(b"inline");
            for row in rows {
                eat_bytes(&(row.len() as u64).to_le_bytes());
                for &item in row {
                    eat_bytes(&item.to_le_bytes());
                }
            }
        }
        DatasetSpec::Named { dataset, scale } => {
            eat_bytes(b"named");
            eat_bytes(dataset.label().as_bytes());
            eat_bytes(&(scale.factor() as u64).to_le_bytes());
        }
        DatasetSpec::Path(path) => {
            eat_bytes(b"path");
            eat_bytes(path.as_bytes());
        }
    }
    h
}

/// The shard `spec` routes to, for a pool of `shards` shards.
fn shard_of(spec: &DatasetSpec, shards: usize) -> usize {
    (fpm::faults::mix(spec_hash(spec)) % shards as u64) as usize
}

/// Stamps the caller-experienced latency and delivers the response.
fn respond(job: Job, mut resp: MineResponse) {
    resp.stats.service_us = job.submitted.elapsed().as_micros() as u64;
    let _ = job.tx.send(resp);
}

fn worker_loop(inner: &Inner, shard_idx: usize) {
    // Spawned with an in-range index; bail (don't panic) if not.
    let Some(shard) = inner.shards.get(shard_idx) else {
        return;
    };
    loop {
        let job = {
            let mut q = shard.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shard
                    .ready
                    .wait(q)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        // Chaos injection site: a stalled shard worker. The delay
        // flavor sleeps inside the hook (other shards keep draining and
        // this shard's queue resolves late but honestly); the panic
        // flavor returns `true` and the picked job is failed outright,
        // as if the worker died holding it.
        if fpm::faults::shard_stall(shard.index) {
            let m = Meters {
                global: &inner.metrics,
                shard: &shard.metrics,
            };
            m.incr("requests_failed");
            let queue_ms = job.submitted.elapsed().as_millis() as u64;
            respond(
                job,
                MineResponse {
                    outcome: Outcome::Failed,
                    patterns: None,
                    count: 0,
                    reason: Some(
                        "shard worker stalled (chaos): job failed at pickup".to_string(),
                    ),
                    stats: MineStats {
                        queue_ms,
                        ..MineStats::default()
                    },
                },
            );
            continue;
        }
        handle_job(inner, shard, job);
    }
}

/// Serves `full` (a complete cached or freshly mined result) under one
/// request's budget and include flags.
fn serve_full(
    req: &MineRequest,
    full: Arc<Vec<ItemsetCount>>,
    stats: &mut MineStats,
) -> MineResponse {
    // Budget cut via the non-panicking slice accessor: a budget at or
    // past the end serves the whole list untruncated.
    let cut = req
        .max_patterns
        .and_then(|b| full.get(..b as usize))
        .filter(|prefix| prefix.len() < full.len())
        .map(|prefix| prefix.to_vec());
    let (patterns, truncated) = match cut {
        Some(prefix) => (Arc::new(prefix), true),
        None => (full, false),
    };
    stats.truncated = truncated;
    stats.emitted = patterns.len() as u64;
    MineResponse {
        outcome: Outcome::Complete,
        count: patterns.len() as u64,
        patterns: req.include_patterns.then_some(patterns),
        reason: None,
        stats: *stats,
    }
}

/// An answer for a control that tripped without mining: the empty
/// pattern list, the zero-length prefix of the serial emission order.
fn tripped_response(req: &MineRequest, cause: Option<StopCause>, stats: MineStats) -> MineResponse {
    MineResponse {
        outcome: outcome_of(cause),
        patterns: req.include_patterns.then(|| Arc::new(Vec::new())),
        count: 0,
        reason: None,
        stats,
    }
}

fn handle_job(inner: &Inner, shard: &Shard, job: Job) {
    let m = Meters {
        global: &inner.metrics,
        shard: &shard.metrics,
    };
    let queue_ms = job.submitted.elapsed().as_millis() as u64;
    let picked_up = Instant::now();
    let mut stats = MineStats {
        queue_ms,
        ..MineStats::default()
    };

    // Tripped while queued: answer without mining.
    if job.control.should_stop() {
        let cause = job.control.stop_cause();
        count_outcome(&m, outcome_of(cause));
        let resp = tripped_response(&job.request, cause, stats);
        respond(job, resp);
        return;
    }

    let db = match resolve_dataset(inner, &job.request.dataset) {
        Ok(db) => db,
        Err(reason) => {
            m.incr("requests_rejected");
            m.incr("rejected_bad_dataset");
            respond(job, MineResponse::rejected(reason, stats));
            return;
        }
    };
    let key: CacheKey = (
        fingerprint(&db),
        job.request.kernel.code(),
        job.request.min_support,
        job.request.query.key(),
    );

    // Cache probe before admission: a cached answer is free to serve no
    // matter how large the search space was. Corrupt and expired
    // entries have been dropped by the probe; both are misses and the
    // request falls through to mining.
    m.incr("cache_probes");
    let looked = shard.cache.lock().unwrap_or_else(|e| e.into_inner()).probe(&key);
    match looked {
        Lookup::Hit(full) => {
            m.incr("cache_hits");
            stats.cache_hit = true;
            stats.mine_ms = picked_up.elapsed().as_millis() as u64;
            let resp = serve_full(&job.request, full, &mut stats);
            m.add("patterns_emitted", stats.emitted);
            m.incr("requests_completed");
            respond(job, resp);
            return;
        }
        Lookup::Corrupt => {
            m.incr("cache_integrity_failures");
            m.incr("cache_misses");
        }
        Lookup::Expired => {
            m.incr("cache_expired");
            m.incr("cache_misses");
        }
        Lookup::Miss => m.incr("cache_misses"),
    }

    // Admission control: the Geerts-style bound from shape facts alone.
    // The chaos admission-flap site can force the rejection branch for
    // an otherwise admissible request (constant `false` without the
    // `chaos` feature), exercising the same accounting path.
    let bound = fpm::bound::candidate_bound(&db, job.request.min_support);
    stats.candidate_bound = bound;
    let flap = fpm::faults::admission_flap();
    if flap || bound > inner.cfg.max_candidate_bound {
        m.incr("requests_rejected");
        m.incr("rejected_admission");
        let reason = if flap {
            format!("admission flap (chaos): candidate bound {bound:.3e} spuriously rejected")
        } else {
            format!(
                "candidate bound {bound:.3e} exceeds admission ceiling {:.3e}",
                inner.cfg.max_candidate_bound
            )
        };
        respond(job, MineResponse::rejected(reason, stats));
        return;
    }

    // Single-flight: attach to an identical in-flight run, or register
    // as its leader. Check-and-register is atomic under the inflight
    // lock, so a key has at most one leader at a time.
    {
        let mut inflight = shard.inflight.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(flight) = inflight.get_mut(&key) {
            m.incr("requests_coalesced");
            flight.followers.push(job);
            return;
        }
        inflight.insert(key, Flight { followers: Vec::new() });
        m.incr("singleflight_leaders");
    }

    // Double-check after taking leadership: the previous flight for
    // this key may have finished — inserting its result and closing —
    // between this request's probe-miss and its registration. Serving
    // the fresh entry keeps "one mine per key" exact instead of
    // best-effort. The access is an internal dedup check, not a
    // request-level probe, so it stays out of the cache_probes
    // arithmetic (the request already counted its one probe as a miss).
    let rechecked = shard.cache.lock().unwrap_or_else(|e| e.into_inner()).probe(&key);
    if let Lookup::Hit(full) = rechecked {
        let followers = shard
            .inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&key)
            .map(|f| f.followers)
            .unwrap_or_default();
        fan_out(inner, shard, &m, Some(&full), followers);
        stats.cache_hit = true;
        stats.mine_ms = picked_up.elapsed().as_millis() as u64;
        let resp = serve_full(&job.request, full, &mut stats);
        m.add("patterns_emitted", stats.emitted);
        m.incr("requests_completed");
        respond(job, resp);
        return;
    }

    // Test gate: park here (leader registered, not yet mining) so
    // deterministic tests can attach followers before releasing.
    // ORDERING: Relaxed — pure control-flow gate, re-polled every
    // millisecond; no payload rides on the flag (see `hold_mining`).
    while inner.hold.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(1));
    }

    m.incr("mined_runs");
    let mut sink = CollectSink::default();
    // `mine_threads` 0 means "serial in the worker" here (the pool is
    // the parallelism), so it does NOT fall through to the runtime's
    // auto-detection the way `MinePlan::threads(0)` would.
    let summary = MinePlan::kernel(job.request.kernel, job.request.min_support)
        .threads(inner.cfg.mine_threads.max(1))
        .query(job.request.query)
        .execute_controlled(&db, &job.control, &mut sink);
    stats.mine_ms = picked_up.elapsed().as_millis() as u64;
    let cause = job.control.stop_cause();
    let outcome = outcome_of(cause);
    stats.truncated = cause == Some(StopCause::BudgetExhausted);
    stats.emitted = sink.patterns.len() as u64;
    m.add("patterns_emitted", stats.emitted);
    count_outcome(&m, outcome);

    let patterns = Arc::new(sink.patterns);
    let shareable = summary.shareable();
    if shareable {
        let evicted = shard
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, Arc::clone(&patterns));
        m.add("cache_evictions", evicted);
    }
    // Close the flight only after the cache insert: a request probing
    // in between either hits the fresh entry or still finds the flight
    // to attach to — never a gap that would double-mine.
    let followers = shard
        .inflight
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&key)
        .map(|f| f.followers)
        .unwrap_or_default();
    fan_out(inner, shard, &m, shareable.then_some(&patterns), followers);

    let reason = (outcome == Outcome::Failed).then(|| {
        "mining task panicked; patterns are the prefix emitted before the failure".to_string()
    });
    let resp = MineResponse {
        outcome,
        count: patterns.len() as u64,
        patterns: job.request.include_patterns.then_some(patterns),
        reason,
        stats,
    };
    respond(job, resp);
}

/// Answers every follower of a finished flight. With a shareable result
/// each follower is served from it under its own flags; without one the
/// followers are requeued at the *front* of the shard queue (they were
/// submitted before anything now waiting behind them) to mine on their
/// own controls.
fn fan_out(
    inner: &Inner,
    shard: &Shard,
    m: &Meters<'_>,
    shared: Option<&Arc<Vec<ItemsetCount>>>,
    followers: Vec<Job>,
) {
    let Some(full) = shared else {
        let n = followers.len() as u64;
        if n > 0 {
            m.add("coalesced_requeued", n);
            let mut q = shard.queue.lock().unwrap_or_else(|e| e.into_inner());
            // Keep relative submit order: push_front in reverse.
            for job in followers.into_iter().rev() {
                q.jobs.push_front(job);
            }
            drop(q);
            shard.ready.notify_all();
        }
        return;
    };
    let _ = inner;
    for job in followers {
        m.incr("coalesced_served");
        let mut stats = MineStats {
            queue_ms: job.submitted.elapsed().as_millis() as u64,
            coalesced: true,
            ..MineStats::default()
        };
        // A follower whose own control tripped while attached gets the
        // honest tripped answer, not a result its limits disclaimed.
        if job.control.should_stop() {
            let cause = job.control.stop_cause();
            count_outcome(m, outcome_of(cause));
            let resp = tripped_response(&job.request, cause, stats);
            respond(job, resp);
            continue;
        }
        let resp = serve_full(&job.request, Arc::clone(full), &mut stats);
        m.add("patterns_emitted", stats.emitted);
        m.incr("requests_completed");
        respond(job, resp);
    }
}

/// Maps a control's stop cause to the response outcome. A budget trip
/// is still `Complete`: the caller asked for at most N patterns and got
/// the first N of the serial order ([`MineStats::truncated`] flags it).
fn outcome_of(cause: Option<StopCause>) -> Outcome {
    match cause {
        None | Some(StopCause::BudgetExhausted) => Outcome::Complete,
        Some(StopCause::Cancelled) => Outcome::Cancelled,
        Some(StopCause::DeadlineExceeded) => Outcome::DeadlineExceeded,
        Some(StopCause::TaskPanicked) => Outcome::Failed,
    }
}

fn count_outcome(m: &Meters<'_>, outcome: Outcome) {
    m.incr(match outcome {
        Outcome::Complete => "requests_completed",
        Outcome::Cancelled => "requests_cancelled",
        Outcome::DeadlineExceeded => "requests_deadline_exceeded",
        Outcome::Rejected => "requests_rejected",
        Outcome::Failed => "requests_failed",
    });
}

/// Artifact file stem for a named spec — must agree with
/// `store::Artifact::stem` so a flush lands where the next warm start
/// scans.
fn named_stem(dataset: &quest::Dataset, scale: &quest::Scale) -> String {
    // Lowercase to match the wire labels (`ds1`), so the stem equals
    // what `store::Artifact::stem` derives from the persisted spec.
    format!(
        "named-{}-{}",
        dataset.label().to_ascii_lowercase(),
        scale.label()
    )
}

/// Deterministic shard attribution for an artifact that failed to load
/// (its spec — and therefore its routing shard — is unreadable): hash
/// the file stem the same FNV-then-mix way specs are routed.
fn stem_shard(path: &Path, shards: usize) -> usize {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
    for &b in stem.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    (fpm::faults::mix(h) % shards.max(1) as u64) as usize
}

/// Boot-time warm start: scan `dir`, and for every artifact that loads
/// cleanly register its dataset and seed the owning shard's cache with
/// the artifact's generation-live results. Damage of any kind — bad
/// magic, failed CRC, truncation, or a fingerprint that does not match
/// the database rebuilt from the raw section — counts one
/// `store_integrity_failures` and falls back to the cold path.
fn warm_start(inner: &Inner, dir: &Path) {
    let Ok(paths) = store::scan(dir) else {
        // Missing or unreadable directory: nothing to warm from. The
        // first shutdown flush will create it.
        return;
    };
    for path in paths {
        let artifact = match store::Artifact::load(&path) {
            Ok(a) => a,
            Err(_) => {
                let idx = stem_shard(&path, inner.shards.len());
                if let Some(shard) = inner.shards.get(idx) {
                    let m = Meters {
                        global: &inner.metrics,
                        shard: &shard.metrics,
                    };
                    m.incr("store_integrity_failures");
                }
                continue;
            }
        };
        // Only named specs are warm-startable: inline/path artifacts
        // carry no identity the service could route a request by.
        let (Some(dataset), Some(scale)) = (
            quest::Dataset::by_label(&artifact.spec.dataset),
            quest::Scale::by_label(&artifact.spec.scale),
        ) else {
            continue;
        };
        let spec = DatasetSpec::Named { dataset, scale };
        let idx = shard_of(&spec, inner.shards.len());
        let Some(shard) = inner.shards.get(idx) else {
            continue;
        };
        let m = Meters {
            global: &inner.metrics,
            shard: &shard.metrics,
        };
        // Cross-check the recorded fingerprint against the database the
        // raw section actually rebuilds — the serve-side half of the
        // integrity contract (CRCs alone cannot catch a stale raw
        // section written by a buggy producer).
        let db = Arc::new(TransactionDb::from_transactions(artifact.raw.clone()));
        if fingerprint(&db) != artifact.fingerprint {
            m.incr("store_integrity_failures");
            continue;
        }
        // Register the dataset: the first request skips generation —
        // the boot-time "skip prepare" of the tentpole.
        inner
            .datasets
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert((dataset.label(), scale.factor()), Arc::clone(&db));
        inner
            .store_reg
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(
                named_stem(&dataset, &scale),
                (spec.clone(), artifact.generation),
            );
        m.incr("store_artifacts_loaded");
        let mut evicted = 0;
        let mut warmed = 0;
        {
            let mut cache = shard.cache.lock().unwrap_or_else(|e| e.into_inner());
            for entry in artifact.live_results() {
                // A v2 artifact with an unknown (future) query class
                // code cannot appear here — the store decoder validates
                // the tag — so the key can carry the entry's query
                // verbatim; v1 entries carry the identity key.
                let key: CacheKey =
                    (artifact.fingerprint, entry.kernel, entry.min_support, entry.query);
                evicted += cache.insert(key, Arc::new(entry.patterns.clone()));
                warmed += 1;
            }
        }
        m.add("store_warm_entries", warmed);
        m.add("cache_evictions", evicted);
    }
}

/// Shutdown flush: persist each registered dataset's cached complete
/// results (plus freshly built prepared sections) back to the store,
/// atomically, one artifact per dataset. Datasets with nothing cached
/// are skipped — `store build` covers the results-free case.
fn flush_store(inner: &Inner) {
    let Some(dir) = inner.cfg.store_dir.as_deref() else {
        return;
    };
    let reg: Vec<(String, DatasetSpec, u64)> = inner
        .store_reg
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(stem, (spec, generation))| (stem.clone(), spec.clone(), *generation))
        .collect();
    if reg.is_empty() {
        return;
    }
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    for (stem, spec, generation) in reg {
        let Ok(db) = resolve_dataset(inner, &spec) else {
            continue;
        };
        let fp = fingerprint(&db);
        let idx = shard_of(&spec, inner.shards.len());
        let Some(shard) = inner.shards.get(idx) else {
            continue;
        };
        let entries: Vec<(CacheKey, Arc<Vec<ItemsetCount>>)> = {
            let cache = shard.cache.lock().unwrap_or_else(|e| e.into_inner());
            cache
                .entries()
                .filter(|(k, _)| k.0 == fp)
                .map(|(k, p)| (*k, Arc::clone(p)))
                .collect()
        };
        if entries.is_empty() {
            continue;
        }
        let spec_meta = match &spec {
            DatasetSpec::Named { dataset, scale } => {
                store::SpecMeta::named(&dataset.label().to_ascii_lowercase(), scale.label())
            }
            _ => continue,
        };
        // Prepare at the smallest cached minsup: every cached result's
        // frequent items survive that border.
        let minsup = entries.iter().map(|(k, _)| k.2).min().unwrap_or(1);
        let mut artifact = store::Artifact::build(spec_meta, &db, minsup);
        artifact.generation = generation;
        let flushed = entries.len() as u64;
        for (key, patterns) in entries {
            artifact.push_result(key.1, key.2, key.3, (*patterns).clone());
        }
        let path = dir.join(format!("{}.{}", stem, store::EXTENSION));
        if artifact.store(&path).is_ok() {
            let m = Meters {
                global: &inner.metrics,
                shard: &shard.metrics,
            };
            m.add("store_flushed_entries", flushed);
        }
    }
}

fn resolve_dataset(inner: &Inner, spec: &DatasetSpec) -> Result<Arc<TransactionDb>, String> {
    match spec {
        DatasetSpec::Named { dataset, scale } => {
            let key = (dataset.label(), scale.factor());
            // With a store configured, track every named dataset seen so
            // the shutdown flush knows what to persist.
            if inner.cfg.store_dir.is_some() {
                inner
                    .store_reg
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .entry(named_stem(dataset, scale))
                    .or_insert_with(|| (spec.clone(), 0));
            }
            if let Some(db) = inner
                .datasets
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get(&key)
            {
                return Ok(Arc::clone(db));
            }
            // Generate outside the lock: generation is the slow part and
            // the generators are deterministic, so a racing duplicate
            // insert is harmless.
            let db = Arc::new(dataset.generate(*scale));
            inner
                .datasets
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(key, Arc::clone(&db));
            Ok(db)
        }
        other => other.resolve().map(Arc::new),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpm::types::MineKind;
    use fpm::{PatternQuery, RuleSpec};

    fn toy_spec() -> DatasetSpec {
        DatasetSpec::Inline(vec![
            vec![0, 2, 5],
            vec![1, 2, 5],
            vec![0, 2, 5],
            vec![3, 4],
            vec![0, 1, 2, 3, 4, 5],
        ])
    }

    #[test]
    fn completes_and_matches_serial() {
        let svc = MineService::start(ServeConfig::default());
        for kernel in Kernel::ALL {
            let resp = svc.mine(MineRequest::new(toy_spec(), kernel, 2));
            assert_eq!(resp.outcome, Outcome::Complete, "{}", kernel.label());
            let got = resp.patterns.expect("patterns included by default");
            let db = toy_spec().resolve().unwrap();
            let mut sink = CollectSink::default();
            let summary = MinePlan::kernel(kernel, 2).execute(&db, &mut sink);
            assert!(summary.complete);
            assert_eq!(*got, sink.patterns, "{}", kernel.label());
        }
        svc.shutdown();
    }

    #[test]
    fn budget_truncates_but_stays_complete() {
        let svc = MineService::start(ServeConfig::default());
        let full = svc.mine(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        let mut limited = MineRequest::new(toy_spec(), Kernel::Lcm, 2);
        limited.max_patterns = Some(3);
        let resp = svc.mine(limited);
        assert_eq!(resp.outcome, Outcome::Complete);
        assert!(resp.stats.truncated);
        assert_eq!(resp.count, 3);
        let full = full.patterns.unwrap();
        let got = resp.patterns.unwrap();
        assert_eq!(*got, full[..3], "budget output is a prefix of the full run");
        svc.shutdown();
    }

    #[test]
    fn count_only_omits_patterns() {
        let svc = MineService::start(ServeConfig::default());
        let mut req = MineRequest::new(toy_spec(), Kernel::Eclat, 2);
        req.include_patterns = false;
        let resp = svc.mine(req);
        assert_eq!(resp.outcome, Outcome::Complete);
        assert!(resp.patterns.is_none());
        assert!(resp.count > 0);
        svc.shutdown();
    }

    #[test]
    fn admission_bound_rejects_wide_requests() {
        let svc = MineService::start(ServeConfig {
            max_candidate_bound: 2.0,
            ..ServeConfig::default()
        });
        let resp = svc.mine(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        assert_eq!(resp.outcome, Outcome::Rejected);
        assert!(resp.reason.unwrap().contains("admission ceiling"));
        assert_eq!(svc.metrics().get("rejected_admission"), 1);
        assert_eq!(svc.metrics().get("mined_runs"), 0, "no mining was spent");
        svc.shutdown();
    }

    #[test]
    fn bad_dataset_rejects() {
        let svc = MineService::start(ServeConfig::default());
        let resp = svc.mine(MineRequest::new(
            DatasetSpec::Path("/nonexistent/file.dat".into()),
            Kernel::Lcm,
            2,
        ));
        assert_eq!(resp.outcome, Outcome::Rejected);
        assert_eq!(svc.metrics().get("rejected_bad_dataset"), 1);
        svc.shutdown();
    }

    #[test]
    fn cache_hit_skips_mining() {
        let svc = MineService::start(ServeConfig::default());
        let cold = svc.mine(MineRequest::new(toy_spec(), Kernel::FpGrowth, 2));
        assert!(!cold.stats.cache_hit);
        assert_eq!(svc.metrics().get("mined_runs"), 1);
        let warm = svc.mine(MineRequest::new(toy_spec(), Kernel::FpGrowth, 2));
        assert!(warm.stats.cache_hit);
        assert_eq!(svc.metrics().get("mined_runs"), 1, "second run never mined");
        assert_eq!(svc.metrics().get("cache_hits"), 1);
        assert_eq!(warm.patterns, cold.patterns, "hit is byte-identical");
        svc.shutdown();
    }

    #[test]
    fn cache_hit_serves_budget_prefix() {
        let svc = MineService::start(ServeConfig::default());
        let cold = svc.mine(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        let mut req = MineRequest::new(toy_spec(), Kernel::Lcm, 2);
        req.max_patterns = Some(2);
        let warm = svc.mine(req);
        assert!(warm.stats.cache_hit);
        assert!(warm.stats.truncated);
        assert_eq!(*warm.patterns.unwrap(), cold.patterns.unwrap()[..2]);
        svc.shutdown();
    }

    #[test]
    fn poisoned_cache_entry_triggers_a_remine() {
        // Satellite: service-level cache poisoning. A tampered entry is
        // detected on probe, dropped, and the request re-mines — the
        // poison is never served, and the counters say exactly what
        // happened.
        let svc = MineService::start(ServeConfig::default());
        let cold = svc.mine(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        assert_eq!(cold.outcome, Outcome::Complete);
        assert!(svc.tamper_cached(&toy_spec(), Kernel::Lcm, 2, |p| p[0].support ^= 1));
        let warm = svc.mine(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        assert_eq!(warm.outcome, Outcome::Complete);
        assert!(!warm.stats.cache_hit, "corrupt entry must not serve as a hit");
        assert_eq!(warm.patterns, cold.patterns, "the re-mine restores the truth");
        let m = svc.metrics();
        assert_eq!(m.get("cache_probes"), 2);
        assert_eq!(m.get("cache_hits"), 0);
        assert_eq!(m.get("cache_misses"), 2, "the corrupt probe counts as a miss");
        assert_eq!(m.get("cache_integrity_failures"), 1);
        assert_eq!(m.get("mined_runs"), 2, "the poisoned request really re-mined");
        // The re-mine healed the slot: a third request is a clean hit.
        let third = svc.mine(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        assert!(third.stats.cache_hit);
        assert_eq!(m.get("cache_integrity_failures"), 1, "no new failure");
        svc.shutdown();
    }

    #[test]
    fn ttl_expired_entry_counts_as_miss_and_remines() {
        // Satellite fix: an entry past its TTL must read as a *miss* in
        // the probe arithmetic (probes = hits + misses), never a hit —
        // and the request must re-mine, exactly like the poisoned-entry
        // path above.
        let svc = MineService::start(ServeConfig {
            cache_ttl: Some(Duration::from_secs(3600)),
            ..ServeConfig::default()
        });
        let cold = svc.mine(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        assert_eq!(cold.outcome, Outcome::Complete);
        assert!(svc.age_cached(&toy_spec(), Kernel::Lcm, 2, Duration::from_secs(3601)));
        let warm = svc.mine(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        assert_eq!(warm.outcome, Outcome::Complete);
        assert!(!warm.stats.cache_hit, "expired entry must not serve as a hit");
        assert_eq!(warm.patterns, cold.patterns, "the re-mine restores the result");
        let m = svc.metrics();
        assert_eq!(m.get("cache_probes"), 2);
        assert_eq!(m.get("cache_hits"), 0, "expiry is never a hit");
        assert_eq!(m.get("cache_misses"), 2, "the expired probe counts as a miss");
        assert_eq!(m.get("cache_expired"), 1);
        assert_eq!(
            m.get("cache_probes"),
            m.get("cache_hits") + m.get("cache_misses"),
            "probe arithmetic must absorb expiry as a miss"
        );
        assert_eq!(m.get("mined_runs"), 2, "the expired request really re-mined");
        // The re-mine refreshed the entry: a third request hits.
        let third = svc.mine(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        assert!(third.stats.cache_hit);
        assert_eq!(m.get("cache_expired"), 1, "no new expiry");
        svc.shutdown();
    }

    #[test]
    fn fresh_ttl_entry_still_hits() {
        let svc = MineService::start(ServeConfig {
            cache_ttl: Some(Duration::from_secs(3600)),
            ..ServeConfig::default()
        });
        let _ = svc.mine(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        assert!(svc.age_cached(&toy_spec(), Kernel::Lcm, 2, Duration::from_secs(60)));
        let warm = svc.mine(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        assert!(warm.stats.cache_hit, "a fresh entry serves normally");
        assert_eq!(svc.metrics().get("cache_expired"), 0);
        svc.shutdown();
    }

    #[test]
    fn queue_full_rejects_synchronously() {
        // Depth 0 makes rejection deterministic regardless of how fast
        // the worker drains.
        let svc = MineService::start(ServeConfig {
            workers: 1,
            queue_depth: 0,
            ..ServeConfig::default()
        });
        let resp = svc.mine(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        assert_eq!(resp.outcome, Outcome::Rejected);
        assert_eq!(resp.reason.as_deref(), Some("queue full"));
        assert_eq!(svc.metrics().get("rejected_queue_full"), 1);
        svc.shutdown();
    }

    #[test]
    fn pre_expired_deadline_answers_without_mining() {
        let svc = MineService::start(ServeConfig::default());
        let mut req = MineRequest::new(toy_spec(), Kernel::Lcm, 2);
        req.deadline = Some(Duration::from_millis(0));
        let resp = svc.mine(req);
        assert_eq!(resp.outcome, Outcome::DeadlineExceeded);
        assert_eq!(resp.count, 0);
        assert_eq!(svc.metrics().get("mined_runs"), 0);
        svc.shutdown();
    }

    #[test]
    fn cancel_before_pickup_yields_cancelled() {
        // Depth 2, one worker: stuff a slow-ish job first so the second
        // is still queued when we cancel it.
        let svc = MineService::start(ServeConfig {
            shards: 1,
            workers: 1,
            queue_depth: 8,
            cache_capacity: 0,
            ..ServeConfig::default()
        });
        let first = svc.submit(MineRequest::new(
            DatasetSpec::Named {
                dataset: quest::Dataset::Ds1,
                scale: quest::Scale::Smoke,
            },
            Kernel::Lcm,
            30,
        ));
        let second = svc.submit(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        second.cancel();
        let resp = second.wait();
        assert_eq!(resp.outcome, Outcome::Cancelled);
        assert!(resp.count <= 7, "cancelled output is a (possibly empty) prefix");
        let _ = first.wait();
        svc.shutdown();
    }

    #[test]
    fn submit_after_shutdown_rejects() {
        let svc = MineService::start(ServeConfig::default());
        svc.shutdown();
        let resp = svc.mine(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        assert_eq!(resp.outcome, Outcome::Rejected);
        assert_eq!(resp.reason.as_deref(), Some("service shut down"));
    }

    #[test]
    fn named_dataset_generated_once() {
        let svc = MineService::start(ServeConfig::default());
        let spec = DatasetSpec::Named {
            dataset: quest::Dataset::Ds1,
            scale: quest::Scale::Smoke,
        };
        let a = svc.mine(MineRequest::new(spec.clone(), Kernel::Lcm, 60));
        let b = svc.mine(MineRequest::new(spec, Kernel::Lcm, 60));
        assert_eq!(a.outcome, Outcome::Complete);
        assert!(b.stats.cache_hit, "same named dataset: result cache hit");
        svc.shutdown();
    }

    #[test]
    fn parallel_mining_matches_serial_service() {
        let serial = MineService::start(ServeConfig::default());
        let parallel = MineService::start(ServeConfig {
            mine_threads: 3,
            ..ServeConfig::default()
        });
        for kernel in Kernel::ALL {
            let a = serial.mine(MineRequest::new(toy_spec(), kernel, 2));
            let b = parallel.mine(MineRequest::new(toy_spec(), kernel, 2));
            assert_eq!(a.patterns, b.patterns, "{}", kernel.label());
        }
        serial.shutdown();
        parallel.shutdown();
    }

    #[test]
    fn routing_is_stable_and_spreads_datasets() {
        let svc = MineService::start(ServeConfig {
            shards: 4,
            ..ServeConfig::default()
        });
        assert_eq!(svc.shard_count(), 4);
        let specs: Vec<DatasetSpec> = (0..32u32)
            .map(|i| DatasetSpec::Inline(vec![vec![i, i + 1], vec![i]]))
            .collect();
        let first: Vec<usize> = specs.iter().map(|s| svc.shard_of(s)).collect();
        let second: Vec<usize> = specs.iter().map(|s| svc.shard_of(s)).collect();
        assert_eq!(first, second, "routing is a pure function of the spec");
        let mut seen = [false; 4];
        for &s in &first {
            seen[s] = true;
        }
        assert!(
            seen.iter().filter(|&&s| s).count() >= 2,
            "32 distinct datasets must spread over more than one shard: {first:?}"
        );
        svc.shutdown();
    }

    #[test]
    fn per_shard_counters_sum_to_global() {
        let svc = MineService::start(ServeConfig {
            shards: 3,
            ..ServeConfig::default()
        });
        for i in 0..12u32 {
            let spec = DatasetSpec::Inline(vec![vec![i, i + 1, i + 2], vec![i, i + 1]]);
            let resp = svc.mine(MineRequest::new(spec, Kernel::Lcm, 1));
            assert_eq!(resp.outcome, Outcome::Complete);
        }
        let global = svc.metrics();
        for name in METRIC_NAMES {
            let total: u64 = (0..svc.shard_count())
                .map(|s| svc.shard_metrics(s).get(name))
                .sum();
            assert_eq!(total, global.get(name), "{name}: shard sum != global");
        }
        assert_eq!(global.get("requests_submitted"), 12);
        svc.shutdown();
    }

    #[test]
    fn identical_cold_requests_coalesce_into_one_mine() {
        // The deterministic stampede: hold the mining gate, let the
        // leader register, pile followers onto the flight, release.
        let svc = MineService::start(ServeConfig {
            shards: 1,
            workers: 2,
            ..ServeConfig::default()
        });
        svc.hold_mining(true);
        let leader = svc.submit(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        wait_for(&svc, "singleflight_leaders", 1);
        const FOLLOWERS: usize = 4;
        let tickets: Vec<Ticket> = (0..FOLLOWERS)
            .map(|_| svc.submit(MineRequest::new(toy_spec(), Kernel::Lcm, 2)))
            .collect();
        wait_for(&svc, "requests_coalesced", FOLLOWERS as u64);
        svc.hold_mining(false);
        let lead_resp = leader.wait();
        assert_eq!(lead_resp.outcome, Outcome::Complete);
        assert!(!lead_resp.stats.coalesced);
        for t in tickets {
            let resp = t.wait();
            assert_eq!(resp.outcome, Outcome::Complete);
            assert!(resp.stats.coalesced, "followers are answered by the leader");
            assert_eq!(resp.patterns, lead_resp.patterns, "fan-out is byte-identical");
        }
        let m = svc.metrics();
        assert_eq!(m.get("mined_runs"), 1, "the stampede mined exactly once");
        assert_eq!(m.get("coalesced_served"), FOLLOWERS as u64);
        assert_eq!(m.get("coalesced_requeued"), 0);
        svc.shutdown();
    }

    #[test]
    fn coalesced_followers_respect_their_own_budgets() {
        let svc = MineService::start(ServeConfig {
            shards: 1,
            workers: 2,
            ..ServeConfig::default()
        });
        svc.hold_mining(true);
        let leader = svc.submit(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        wait_for(&svc, "singleflight_leaders", 1);
        let mut limited = MineRequest::new(toy_spec(), Kernel::Lcm, 2);
        limited.max_patterns = Some(2);
        let follower = svc.submit(limited);
        wait_for(&svc, "requests_coalesced", 1);
        svc.hold_mining(false);
        let full = leader.wait().patterns.unwrap();
        let resp = follower.wait();
        assert!(resp.stats.coalesced);
        assert!(resp.stats.truncated);
        assert_eq!(*resp.patterns.unwrap(), full[..2], "fan-out applies the budget cut");
        svc.shutdown();
    }

    #[test]
    fn query_requests_answer_like_the_plan_and_cache_separately() {
        let svc = MineService::start(ServeConfig::default());
        let queries = [
            PatternQuery::all(),
            PatternQuery::class(MineKind::Closed),
            PatternQuery::class(MineKind::Maximal),
            PatternQuery::all().top_k(3),
            PatternQuery::class(MineKind::Closed)
                .rules(RuleSpec { min_confidence: 0.6, min_lift: 0.0 }),
        ];
        let db = toy_spec().resolve().unwrap();
        for q in queries {
            let req = MineRequest::new(toy_spec(), Kernel::Lcm, 2).with_query(q);
            let resp = svc.mine(req);
            assert_eq!(resp.outcome, Outcome::Complete, "{}", q.label());
            let mut sink = CollectSink::default();
            let summary = MinePlan::kernel(Kernel::Lcm, 2)
                .query(q)
                .execute(&db, &mut sink);
            assert!(summary.complete);
            assert_eq!(
                *resp.patterns.expect("patterns included"),
                sink.patterns,
                "{}",
                q.label()
            );
        }
        // Five distinct queries at one (dataset, kernel, minsup): five
        // distinct cache slots, five mines, zero cross-query hits.
        let m = svc.metrics();
        assert_eq!(m.get("mined_runs"), queries.len() as u64);
        assert_eq!(m.get("cache_hits"), 0);
        // Re-asking each query now hits its own slot.
        for q in queries {
            let resp = svc.mine(MineRequest::new(toy_spec(), Kernel::Lcm, 2).with_query(q));
            assert!(resp.stats.cache_hit, "{}", q.label());
        }
        assert_eq!(m.get("mined_runs"), queries.len() as u64, "no re-mining");
        svc.shutdown();
    }

    #[test]
    fn coalescing_is_query_keyed() {
        // Identical (dataset, kernel, minsup) but a different query must
        // NOT attach to the in-flight identity run — it is a different
        // answer. Same query does attach.
        let svc = MineService::start(ServeConfig {
            shards: 1,
            workers: 3,
            ..ServeConfig::default()
        });
        svc.hold_mining(true);
        let leader = svc.submit(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        wait_for(&svc, "singleflight_leaders", 1);
        let same = svc.submit(MineRequest::new(toy_spec(), Kernel::Lcm, 2));
        wait_for(&svc, "requests_coalesced", 1);
        let closed = svc.submit(
            MineRequest::new(toy_spec(), Kernel::Lcm, 2)
                .with_query(PatternQuery::class(MineKind::Closed)),
        );
        // The closed-query request leads its own flight instead.
        wait_for(&svc, "singleflight_leaders", 2);
        svc.hold_mining(false);
        let lead_resp = leader.wait();
        let same_resp = same.wait();
        let closed_resp = closed.wait();
        assert!(same_resp.stats.coalesced);
        assert_eq!(same_resp.patterns, lead_resp.patterns);
        assert!(!closed_resp.stats.coalesced, "distinct query, distinct flight");
        assert_ne!(closed_resp.patterns, lead_resp.patterns);
        assert_eq!(svc.metrics().get("mined_runs"), 2);
        svc.shutdown();
    }

    #[test]
    fn warm_start_round_trips_query_tagged_results() {
        let dir = std::env::temp_dir().join(format!(
            "fpm-serve-query-store-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = DatasetSpec::Named {
            dataset: quest::Dataset::Ds1,
            scale: quest::Scale::Smoke,
        };
        let queries = [
            PatternQuery::all(),
            PatternQuery::class(MineKind::Maximal),
            PatternQuery::all().top_k(5),
        ];
        let cfg = ServeConfig {
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let first = MineService::start(cfg.clone());
        let cold: Vec<_> = queries
            .iter()
            .map(|&q| {
                let resp = first.mine(MineRequest::new(spec.clone(), Kernel::Lcm, 60).with_query(q));
                assert_eq!(resp.outcome, Outcome::Complete, "{}", q.label());
                resp.patterns.expect("patterns")
            })
            .collect();
        first.shutdown();
        assert_eq!(first.metrics().get("store_flushed_entries"), queries.len() as u64);

        // A new process warm-starts every query's slot: zero mining.
        let second = MineService::start(cfg);
        assert_eq!(second.metrics().get("store_warm_entries"), queries.len() as u64);
        for (q, cold) in queries.iter().zip(&cold) {
            let resp = second.mine(MineRequest::new(spec.clone(), Kernel::Lcm, 60).with_query(*q));
            assert!(resp.stats.cache_hit, "{}: warm slot must hit", q.label());
            assert_eq!(resp.patterns.as_ref(), Some(cold), "{}", q.label());
        }
        assert_eq!(second.metrics().get("mined_runs"), 0, "warm start re-mined nothing");
        second.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Spins until the global counter reaches `want` (bounded).
    fn wait_for(svc: &MineService, name: &str, want: u64) {
        for _ in 0..2000 {
            if svc.metrics().get(name) >= want {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        panic!("counter {name} never reached {want} (at {})", svc.metrics().get(name));
    }
}
