//! Deterministic load generator for the mining service.
//!
//! The generator separates **what** is offered from **when** it lands:
//!
//! * the *schedule* — arrival times and request keys — is a pure
//!   function of `(seed, rps, duration, keys, skew)`, derived from the
//!   workspace's SplitMix64 finalizer ([`fpm::faults::mix`]): Poisson
//!   arrivals (exponential inter-arrival gaps at the target rate) over
//!   a Zipf-skewed key population, the classic shape of a read-heavy
//!   query front. Same seed, same config ⇒ bit-identical schedule, on
//!   every host ([`schedule`], [`schedule_digest`]).
//! * the *run* replays that schedule open-loop against a
//!   [`MineService`] — requests are submitted at their scheduled
//!   offsets whether or not earlier ones have finished, so the service
//!   feels real pressure — and folds the responses into a
//!   [`LoadReport`]: outcome counts, cache/coalescing behaviour, and
//!   the p50/p95/p99 service-latency percentiles.
//!
//! Offered keys map onto the four QUEST datasets at smoke scale with
//! stepped support thresholds, so a multi-shard service sees traffic on
//! every shard and a skewed key distribution produces honest cache-hit
//! and single-flight behaviour.
//!
//! The counts in the report are deterministic for a schedule the
//! service can absorb (no deadlines, queue deep enough); the latency
//! percentiles are honest wall-clock measurements and are **not**
//! expected to reproduce across runs. `BENCH_serve.json` commits one
//! such report; the conformance suite pins the deterministic half.

use crate::json::Json;
use crate::request::{DatasetSpec, Kernel, MineRequest, Outcome};
use crate::service::{MineService, Ticket};
use fpm::faults::mix;
use fpm::types::MineKind;
use fpm::PatternQuery;
use quest::{Dataset, Scale};
use std::time::{Duration, Instant};

/// Shape of the offered load. The schedule is a pure function of this
/// struct, so two runs with equal configs offer identical traffic.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Seed for arrivals and key draws.
    pub seed: u64,
    /// Target offered rate, requests per second.
    pub rps: f64,
    /// Schedule length (arrivals stop here; responses may land later).
    pub duration: Duration,
    /// Distinct request keys (each a `(dataset, min_support)` pair).
    pub keys: usize,
    /// Zipf exponent for key popularity: `0.0` is uniform, `~1.0` a
    /// typical hot-key skew.
    pub skew: f64,
    /// Kernel every request asks for.
    pub kernel: Kernel,
    /// Per-request deadline, if any.
    pub deadline: Option<Duration>,
    /// How many entries of [`query_palette`] the schedule draws from
    /// (clamped to `1..=4`). `1` — the default — offers only the
    /// identity query, the pre-query traffic shape; `4` mixes closed,
    /// maximal and top-k requests in, each key × query pair its own
    /// cache entry.
    pub query_mix: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            seed: 0x5eed_f00d,
            rps: 200.0,
            duration: Duration::from_millis(500),
            keys: 16,
            skew: 1.0,
            kernel: Kernel::Lcm,
            deadline: None,
            query_mix: 1,
        }
    }
}

/// The pattern queries `--query-mix` rotates over: identity first (so a
/// mix of 1 is exactly the pre-query traffic), then the closed and
/// maximal postfilters and a top-k selection.
pub fn query_palette() -> [PatternQuery; 4] {
    [
        PatternQuery::all(),
        PatternQuery::class(MineKind::Closed),
        PatternQuery::class(MineKind::Maximal),
        PatternQuery::all().top_k(32),
    ]
}

/// One scheduled arrival: a key lands at `at_us` microseconds after the
/// run starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Offset from the start of the run, in microseconds.
    pub at_us: u64,
    /// Request-key index in `0..cfg.keys`.
    pub key: usize,
    /// [`query_palette`] index in `0..cfg.query_mix` (always `0` when
    /// the mix is 1 — the identity query).
    pub query: usize,
}

/// A uniform draw in `[0, 1)` from one mixed 64-bit word.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The request a key index stands for: keys rotate over the four QUEST
/// datasets (so shard routing spreads them) and step the support
/// threshold upward every full rotation (so each key is a distinct
/// cache entry with its own result size). The base threshold is twice
/// each dataset's Table 6 smoke support — a cold mine costs tens of
/// milliseconds, not seconds, keeping the generator about the *service*
/// (queueing, caching, coalescing), not kernel throughput.
pub fn key_request(cfg: &LoadConfig, key: usize, query: usize) -> MineRequest {
    let dataset = Dataset::ALL[key % Dataset::ALL.len()];
    let step = (key / Dataset::ALL.len()) as u64;
    let spec = DatasetSpec::Named {
        dataset,
        scale: Scale::Smoke,
    };
    let palette = query_palette();
    let mut req = MineRequest::new(spec, cfg.kernel, dataset.support(Scale::Smoke) * 2 + step * 7)
        .with_query(palette[query % palette.len()]);
    req.include_patterns = false;
    req.deadline = cfg.deadline;
    req
}

/// Derives the arrival schedule: exponential inter-arrival gaps at
/// `cfg.rps` with Zipf(`cfg.skew`) key draws, both from the seed alone.
pub fn schedule(cfg: &LoadConfig) -> Vec<Arrival> {
    let keys = cfg.keys.max(1);
    // Cumulative Zipf weights, normalised on the fly during the draw.
    let weights: Vec<f64> = (0..keys)
        .scan(0.0f64, |acc, i| {
            *acc += 1.0 / ((i + 1) as f64).powf(cfg.skew);
            Some(*acc)
        })
        .collect();
    let total = *weights.last().expect("at least one key");

    let n_queries = cfg.query_mix.clamp(1, query_palette().len()) as u64;
    let mut arrivals = Vec::new();
    let horizon_us = cfg.duration.as_micros() as u64;
    let rps = cfg.rps.max(1e-6);
    let mut t_us = 0.0f64;
    for i in 0u64.. {
        let gap_draw = unit(mix(cfg.seed ^ mix(2 * i + 1)));
        // Inverse-CDF exponential; clamp the draw away from 1.0 so the
        // log never sees zero.
        let gap_s = -(1.0 - gap_draw.min(1.0 - 1e-12)).ln() / rps;
        t_us += gap_s * 1e6;
        if t_us as u64 >= horizon_us {
            break;
        }
        let v = unit(mix(cfg.seed ^ mix(2 * i + 2))) * total;
        let key = weights.partition_point(|&w| w <= v).min(keys - 1);
        // The query draw is its own salted stream, so raising the mix
        // never perturbs arrival times or key draws — the identity-mix
        // prefix of the traffic is unchanged, only the query annotation
        // widens.
        let query = (mix(cfg.seed ^ 0x9e37_79b9_7f4a_7c15 ^ mix(i + 1)) % n_queries) as usize;
        arrivals.push(Arrival {
            at_us: t_us as u64,
            key,
            query,
        });
    }
    arrivals
}

/// FNV-1a digest of a schedule — the conformance suite's witness that
/// two runs offered bit-identical traffic.
pub fn schedule_digest(arrivals: &[Arrival]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for a in arrivals {
        eat(a.at_us);
        eat(a.key as u64);
        eat(a.query as u64);
    }
    h
}

/// What one load run did. The *count* fields are deterministic for a
/// schedule the service absorbs without deadline or queue pressure; the
/// latency fields are wall-clock observations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LoadReport {
    /// FNV digest of the offered schedule (pure function of the config).
    pub schedule_digest: u64,
    /// Requests offered (and submitted — the generator never drops).
    pub requests: u64,
    /// Responses with [`Outcome::Complete`].
    pub completed: u64,
    /// Responses with [`Outcome::Rejected`] (queue, quota, admission).
    pub rejected: u64,
    /// Responses with [`Outcome::Cancelled`].
    pub cancelled: u64,
    /// Responses with [`Outcome::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Responses with [`Outcome::Failed`].
    pub failed: u64,
    /// Responses served from a shard's result cache.
    pub cache_hits: u64,
    /// Responses served by single-flight fan-out.
    pub coalesced: u64,
    /// Actual kernel executions the run cost the service. With caching
    /// and single-flight absorbing a gentle schedule this equals the
    /// number of *distinct* keys offered — the tentpole invariant.
    pub mined_runs: u64,
    /// Median submit-to-response latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
    /// Responses per wall-clock second over the whole run.
    pub throughput_rps: f64,
    /// `cache_hits / requests`.
    pub hit_rate: f64,
    /// `rejected / requests` — the admission tiers' shed fraction.
    pub shed_rate: f64,
    /// Wall-clock from first submission to last response, milliseconds.
    pub wall_ms: u64,
}

impl LoadReport {
    /// The deterministic half of the report: everything a re-run with
    /// the same seed and config must reproduce exactly (all counts; no
    /// timing). Latency percentiles and throughput are excluded on
    /// purpose, and so is the *split* between cache hits and coalesced
    /// fan-outs — whether a repeat lands during or after the first
    /// run's flight is a race — but their **sum** (requests answered
    /// without mining) is pinned, as is the mined-run count itself.
    pub fn deterministic_summary(&self) -> (u64, [u64; 8]) {
        (
            self.schedule_digest,
            [
                self.requests,
                self.completed,
                self.rejected,
                self.cancelled,
                self.deadline_exceeded,
                self.failed,
                self.cache_hits + self.coalesced,
                self.mined_runs,
            ],
        )
    }

    /// Renders the report (with its config) as the committed
    /// `BENCH_serve.json` shape.
    pub fn render(&self, cfg: &LoadConfig, service_cfg_note: &str) -> String {
        let num = |x: u64| Json::Num(x as f64);
        let json = Json::Obj(vec![
            (
                "config".into(),
                Json::Obj(vec![
                    ("seed".into(), num(cfg.seed)),
                    ("rps".into(), Json::Num(cfg.rps)),
                    ("duration_ms".into(), num(cfg.duration.as_millis() as u64)),
                    ("keys".into(), num(cfg.keys as u64)),
                    ("skew".into(), Json::Num(cfg.skew)),
                    ("kernel".into(), Json::Str(cfg.kernel.label().into())),
                    ("query_mix".into(), num(cfg.query_mix as u64)),
                    (
                        "deadline_ms".into(),
                        cfg.deadline
                            .map(|d| num(d.as_millis() as u64))
                            .unwrap_or(Json::Null),
                    ),
                    ("service".into(), Json::Str(service_cfg_note.into())),
                ]),
            ),
            ("schedule_digest".into(), Json::Str(format!("{:016x}", self.schedule_digest))),
            (
                "outcomes".into(),
                Json::Obj(vec![
                    ("requests".into(), num(self.requests)),
                    ("completed".into(), num(self.completed)),
                    ("rejected".into(), num(self.rejected)),
                    ("cancelled".into(), num(self.cancelled)),
                    ("deadline_exceeded".into(), num(self.deadline_exceeded)),
                    ("failed".into(), num(self.failed)),
                ]),
            ),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("hits".into(), num(self.cache_hits)),
                    ("coalesced".into(), num(self.coalesced)),
                    ("mined_runs".into(), num(self.mined_runs)),
                    ("hit_rate".into(), Json::Num(self.hit_rate)),
                ]),
            ),
            (
                "latency_us".into(),
                Json::Obj(vec![
                    ("p50".into(), num(self.p50_us)),
                    ("p95".into(), num(self.p95_us)),
                    ("p99".into(), num(self.p99_us)),
                    ("max".into(), num(self.max_us)),
                ]),
            ),
            ("throughput_rps".into(), Json::Num(self.throughput_rps)),
            ("shed_rate".into(), Json::Num(self.shed_rate)),
            ("wall_ms".into(), num(self.wall_ms)),
        ]);
        json.render()
    }
}

/// Latency percentile by nearest-rank over a sorted sample.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Replays the schedule open-loop against `service` and folds the
/// responses into a [`LoadReport`]. Blocks until every response lands.
pub fn run(service: &MineService, cfg: &LoadConfig) -> LoadReport {
    let arrivals = schedule(cfg);
    let mut report = LoadReport {
        schedule_digest: schedule_digest(&arrivals),
        requests: arrivals.len() as u64,
        ..LoadReport::default()
    };
    let mined_before = service.metrics().get("mined_runs");
    let start = Instant::now();
    let mut tickets: Vec<Ticket> = Vec::with_capacity(arrivals.len());
    for a in &arrivals {
        let due = Duration::from_micros(a.at_us);
        let elapsed = start.elapsed();
        if due > elapsed {
            std::thread::sleep(due - elapsed);
        }
        tickets.push(service.submit(key_request(cfg, a.key, a.query)));
    }
    let mut latencies: Vec<u64> = Vec::with_capacity(tickets.len());
    for ticket in tickets {
        let resp = ticket.wait();
        match resp.outcome {
            Outcome::Complete => report.completed += 1,
            Outcome::Rejected => report.rejected += 1,
            Outcome::Cancelled => report.cancelled += 1,
            Outcome::DeadlineExceeded => report.deadline_exceeded += 1,
            Outcome::Failed => report.failed += 1,
        }
        if resp.stats.cache_hit {
            report.cache_hits += 1;
        }
        if resp.stats.coalesced {
            report.coalesced += 1;
        }
        latencies.push(resp.stats.service_us);
    }
    let wall = start.elapsed();
    report.mined_runs = service.metrics().get("mined_runs") - mined_before;
    latencies.sort_unstable();
    report.p50_us = percentile(&latencies, 50.0);
    report.p95_us = percentile(&latencies, 95.0);
    report.p99_us = percentile(&latencies, 99.0);
    report.max_us = latencies.last().copied().unwrap_or(0);
    report.wall_ms = wall.as_millis() as u64;
    let secs = wall.as_secs_f64().max(1e-9);
    report.throughput_rps = report.requests as f64 / secs;
    if report.requests > 0 {
        report.hit_rate = report.cache_hits as f64 / report.requests as f64;
        report.shed_rate = report.rejected as f64 / report.requests as f64;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;

    fn quick() -> LoadConfig {
        LoadConfig {
            rps: 400.0,
            duration: Duration::from_millis(100),
            keys: 8,
            ..LoadConfig::default()
        }
    }

    #[test]
    fn schedule_is_a_pure_function_of_the_config() {
        let cfg = quick();
        let a = schedule(&cfg);
        let b = schedule(&cfg);
        assert!(!a.is_empty(), "100ms at 400rps offers ~40 arrivals");
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(schedule_digest(&a), schedule_digest(&b));
        let other = schedule(&LoadConfig {
            seed: cfg.seed + 1,
            ..cfg
        });
        assert_ne!(
            schedule_digest(&a),
            schedule_digest(&other),
            "a different seed must offer different traffic"
        );
    }

    #[test]
    fn arrivals_are_ordered_and_inside_the_horizon() {
        let cfg = quick();
        let arrivals = schedule(&cfg);
        let horizon = cfg.duration.as_micros() as u64;
        let mut last = 0;
        for a in &arrivals {
            assert!(a.at_us >= last, "arrival times are monotone");
            assert!(a.at_us < horizon);
            assert!(a.key < cfg.keys);
            last = a.at_us;
        }
    }

    #[test]
    fn zipf_skew_concentrates_on_low_keys() {
        let cfg = LoadConfig {
            skew: 1.2,
            rps: 2000.0,
            duration: Duration::from_millis(500),
            keys: 16,
            ..LoadConfig::default()
        };
        let arrivals = schedule(&cfg);
        let on_key0 = arrivals.iter().filter(|a| a.key == 0).count();
        assert!(
            on_key0 * 4 > arrivals.len(),
            "with skew 1.2 the hottest key draws well over a quarter of \
             the traffic (got {on_key0} of {})",
            arrivals.len()
        );
        let uniform = schedule(&LoadConfig { skew: 0.0, ..cfg });
        let uniform_key0 = uniform.iter().filter(|a| a.key == 0).count();
        assert!(
            uniform_key0 * 4 < uniform.len(),
            "skew 0 is uniform-ish (got {uniform_key0} of {})",
            uniform.len()
        );
    }

    #[test]
    fn query_mix_widens_the_schedule_deterministically() {
        let base = quick();
        let mixed = LoadConfig {
            query_mix: 4,
            ..base
        };
        let a = schedule(&mixed);
        let b = schedule(&mixed);
        assert_eq!(a, b, "same seed + mix, same annotated schedule");
        assert_eq!(schedule_digest(&a), schedule_digest(&b));
        assert_ne!(
            schedule_digest(&a),
            schedule_digest(&schedule(&base)),
            "the query annotation is part of the offered-traffic witness"
        );
        // Raising the mix only widens the query annotation: arrival
        // times and key draws are untouched.
        let plain = schedule(&base);
        assert_eq!(a.len(), plain.len());
        for (m, p) in a.iter().zip(&plain) {
            assert_eq!((m.at_us, m.key), (p.at_us, p.key));
            assert!(m.query < 4);
            assert_eq!(p.query, 0, "mix 1 is identity-only");
        }
        let used: std::collections::BTreeSet<usize> = a.iter().map(|x| x.query).collect();
        assert!(used.len() > 1, "a mix of 4 must actually draw several queries");
    }

    #[test]
    fn mixed_query_run_mines_once_per_distinct_key_query_pair() {
        let svc = MineService::start(ServeConfig {
            shards: 2,
            workers: 2,
            queue_depth: 4096,
            ..ServeConfig::default()
        });
        let cfg = LoadConfig {
            query_mix: 4,
            ..quick()
        };
        let report = run(&svc, &cfg);
        svc.shutdown();
        assert_eq!(report.requests, schedule(&cfg).len() as u64);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.failed, 0);
        let distinct: std::collections::BTreeSet<(usize, usize)> =
            schedule(&cfg).iter().map(|a| (a.key, a.query)).collect();
        assert_eq!(
            report.mined_runs,
            distinct.len() as u64,
            "cache + single-flight are keyed by the full query tuple"
        );
        assert_eq!(
            report.requests,
            report.mined_runs + report.cache_hits + report.coalesced,
            "every request either mined its (key, query) pair once or reused it"
        );
    }

    #[test]
    fn run_accounts_for_every_offered_request() {
        let svc = MineService::start(ServeConfig {
            shards: 2,
            workers: 2,
            queue_depth: 4096,
            ..ServeConfig::default()
        });
        let cfg = quick();
        let report = run(&svc, &cfg);
        svc.shutdown();
        assert_eq!(report.requests, schedule(&cfg).len() as u64);
        assert_eq!(
            report.requests,
            report.completed
                + report.rejected
                + report.cancelled
                + report.deadline_exceeded
                + report.failed,
            "every response has exactly one outcome"
        );
        assert_eq!(report.rejected, 0, "the deep queue absorbs the schedule");
        assert_eq!(report.failed, 0);
        assert!(
            report.cache_hits + report.coalesced > 0,
            "a Zipf-skewed schedule must reuse results"
        );
        let distinct: std::collections::BTreeSet<usize> =
            schedule(&cfg).iter().map(|a| a.key).collect();
        assert_eq!(
            report.mined_runs,
            distinct.len() as u64,
            "cache + single-flight bound mining to one run per distinct key"
        );
        assert_eq!(
            report.requests,
            report.mined_runs + report.cache_hits + report.coalesced,
            "every completed request either mined once or reused a result"
        );
        assert!(report.p50_us <= report.p95_us && report.p95_us <= report.p99_us);
        assert!(report.p99_us <= report.max_us);
    }

    #[test]
    fn report_renders_committed_json_shape() {
        let report = LoadReport {
            schedule_digest: 0xdead_beef,
            requests: 10,
            completed: 10,
            p50_us: 100,
            p95_us: 200,
            p99_us: 300,
            max_us: 400,
            throughput_rps: 123.4,
            hit_rate: 0.5,
            ..LoadReport::default()
        };
        let text = report.render(&LoadConfig::default(), "shards=2 workers=2");
        let v = crate::json::parse(&text).unwrap();
        assert_eq!(v.get("outcomes").unwrap().get("requests").unwrap().as_u64(), Some(10));
        assert_eq!(v.get("latency_us").unwrap().get("p99").unwrap().as_u64(), Some(300));
        assert_eq!(
            v.get("schedule_digest").unwrap().as_str(),
            Some("00000000deadbeef")
        );
        assert_eq!(v.get("config").unwrap().get("kernel").unwrap().as_str(), Some("lcm"));
    }
}
