//! Outcome-taxonomy acceptance tests for the mining service.
//!
//! The load-bearing guarantees, measured end to end:
//!
//! * a short-deadline request on a large synthetic dataset answers
//!   `deadline_exceeded` within **2× the deadline** — cooperative
//!   cancellation really does bound latency;
//! * the same request *without* a deadline answers `complete` with
//!   patterns byte-identical to the serial miner;
//! * whatever a stopped run did deliver is a contiguous **prefix** of
//!   that serial order;
//! * a repeated request is served from the result cache without mining
//!   (verified through the metrics counters).

use fpm_serve::{
    serve_lines, DatasetSpec, Kernel, MineRequest, MineService, Outcome, ServeConfig,
};
use std::time::{Duration, Instant};

/// DS1 at smoke scale with a support low enough that a full mine takes
/// on the order of a second — long enough that a sub-second deadline
/// reliably trips mid-run.
const MINSUP: u64 = 25;

fn big_spec() -> DatasetSpec {
    DatasetSpec::Named {
        dataset: quest::Dataset::Ds1,
        scale: quest::Scale::Smoke,
    }
}

fn serial_patterns() -> Vec<fpm::ItemsetCount> {
    let db = quest::Dataset::Ds1.generate(quest::Scale::Smoke);
    let mut sink = fpm::CollectSink::default();
    lcm::mine(&db, MINSUP, &lcm::LcmConfig::all(), &mut sink);
    sink.patterns
}

/// Warms the service's named-dataset cache so deadline measurements
/// start at mining, not at dataset generation.
fn warm(svc: &MineService) {
    let mut req = MineRequest::new(big_spec(), Kernel::Lcm, 2_000_000);
    req.include_patterns = false;
    let r = svc.mine(req);
    assert_eq!(r.outcome, Outcome::Complete);
}

#[test]
fn deadline_exceeded_within_twice_the_deadline() {
    let svc = MineService::start(ServeConfig::default());
    warm(&svc);
    let deadline = Duration::from_millis(300);
    let mut req = MineRequest::new(big_spec(), Kernel::Lcm, MINSUP);
    req.deadline = Some(deadline);
    let started = Instant::now();
    let resp = svc.mine(req);
    let elapsed = started.elapsed();
    assert_eq!(resp.outcome, Outcome::DeadlineExceeded);
    assert!(
        elapsed < 2 * deadline,
        "deadline {deadline:?} but the response took {elapsed:?}"
    );

    // The truncated output is a contiguous prefix of the serial order.
    let serial = serial_patterns();
    let got = resp.patterns.expect("patterns included by default");
    assert!(
        got.len() < serial.len(),
        "the deadline must have cut the run short"
    );
    assert_eq!(
        *got,
        serial[..got.len()],
        "cut output must be a prefix of serial emission order"
    );

    // The same request without a deadline completes, byte-identical to
    // the serial miner.
    let resp = svc.mine(MineRequest::new(big_spec(), Kernel::Lcm, MINSUP));
    assert_eq!(resp.outcome, Outcome::Complete);
    assert!(!resp.stats.truncated);
    assert_eq!(*resp.patterns.expect("patterns"), serial);
    svc.shutdown();
}

#[test]
fn cancellation_cuts_a_running_request() {
    let svc = MineService::start(ServeConfig::default());
    warm(&svc);
    let mut req = MineRequest::new(big_spec(), Kernel::Lcm, MINSUP);
    req.include_patterns = false;
    let ticket = svc.submit(req);
    // Let the worker get into the recursion, then cancel.
    std::thread::sleep(Duration::from_millis(60));
    let started = Instant::now();
    ticket.cancel();
    let resp = ticket.wait();
    assert_eq!(resp.outcome, Outcome::Cancelled);
    assert!(
        started.elapsed() < Duration::from_millis(600),
        "cancellation must take effect promptly"
    );
    assert_eq!(svc.metrics().get("requests_cancelled"), 1);
    svc.shutdown();
}

#[test]
fn repeated_request_is_served_from_cache_without_mining() {
    let svc = MineService::start(ServeConfig::default());
    let req = || {
        let mut r = MineRequest::new(big_spec(), Kernel::Eclat, 60);
        r.include_patterns = true;
        r
    };
    let cold = svc.mine(req());
    assert_eq!(cold.outcome, Outcome::Complete);
    assert!(!cold.stats.cache_hit);
    let mined_before = svc.metrics().get("mined_runs");
    let hits_before = svc.metrics().get("cache_hits");

    let warm = svc.mine(req());
    assert_eq!(warm.outcome, Outcome::Complete);
    assert!(warm.stats.cache_hit);
    assert_eq!(
        svc.metrics().get("mined_runs"),
        mined_before,
        "cache hit must not mine"
    );
    assert_eq!(svc.metrics().get("cache_hits"), hits_before + 1);
    assert_eq!(warm.patterns, cold.patterns, "hit is byte-identical to the cold run");
    svc.shutdown();
}

#[test]
fn mixed_batch_exercises_the_outcome_taxonomy() {
    // One line-protocol batch that lands in every outcome class:
    // complete, deadline_exceeded, rejected (admission is covered by
    // unit tests; here a parse error and an unknown dataset reject).
    let svc = MineService::start(ServeConfig::default());
    let batch = concat!(
        r#"{"dataset":{"inline":[[1,2,3],[1,2],[2,3]]},"kernel":"lcm","min_support":2}"#,
        "\n",
        r#"{"dataset":{"name":"ds1","scale":"smoke"},"kernel":"lcm","min_support":25,"deadline_ms":150,"include_patterns":false}"#,
        "\n",
        r#"{"dataset":{"path":"/no/such/file.dat"},"kernel":"lcm","min_support":2}"#,
        "\n",
        "this is not json\n",
    );
    let mut out = Vec::new();
    serve_lines(&svc, batch.as_bytes(), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    let outcomes: Vec<String> = text
        .lines()
        .map(|l| {
            fpm_serve::json::parse(l)
                .unwrap()
                .get("outcome")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string()
        })
        .collect();
    assert_eq!(
        outcomes,
        vec!["complete", "deadline_exceeded", "rejected", "rejected"]
    );
    let m = svc.metrics();
    assert_eq!(m.get("requests_completed"), 1);
    assert_eq!(m.get("requests_deadline_exceeded"), 1);
    assert!(m.get("requests_rejected") >= 1);
    svc.shutdown();
}

#[test]
fn parallel_service_deadline_still_yields_serial_prefix() {
    let svc = MineService::start(ServeConfig {
        mine_threads: 4,
        ..ServeConfig::default()
    });
    warm(&svc);
    let mut req = MineRequest::new(big_spec(), Kernel::Lcm, MINSUP);
    req.deadline = Some(Duration::from_millis(200));
    let resp = svc.mine(req);
    assert_eq!(resp.outcome, Outcome::DeadlineExceeded);
    let serial = serial_patterns();
    let got = resp.patterns.expect("patterns");
    assert!(got.len() < serial.len());
    assert_eq!(
        *got,
        serial[..got.len()],
        "parallel cut output must still be a serial-order prefix"
    );
    svc.shutdown();
}
