//! Warm-start acceptance tests for the persistent artifact store
//! (DESIGN.md §14), measured end to end across a simulated restart:
//!
//! * a service shut down against a `store_dir` flushes its cached
//!   results; a **new** service against the same directory answers the
//!   same request as a cache hit with a **zero `mined_runs` delta**,
//!   byte-identical to the cold run;
//! * damaging any one of the artifact's seven sections (or its header)
//!   is detected at load — `store_integrity_failures` — and the service
//!   degrades to a correct cold rebuild, never serving poison;
//! * an artifact appended *while the service was down* warm-starts the
//!   dataset but refuses the stale results: the generation bump
//!   invalidates them.

use fpm_serve::{DatasetSpec, Kernel, MineRequest, MineService, Outcome, ServeConfig};
use std::path::{Path, PathBuf};

fn spec() -> DatasetSpec {
    DatasetSpec::Named {
        dataset: quest::Dataset::Ds1,
        scale: quest::Scale::Smoke,
    }
}

const MINSUP: u64 = 150;

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fpm-serve-store-{}-{}",
        std::process::id(),
        tag
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn store_cfg(dir: &Path) -> ServeConfig {
    ServeConfig {
        store_dir: Some(dir.to_path_buf()),
        ..ServeConfig::default()
    }
}

#[test]
fn restart_answers_from_store_without_remining() {
    let dir = unique_dir("restart");

    let first = MineService::start(store_cfg(&dir));
    let cold = first.mine(MineRequest::new(spec(), Kernel::Lcm, MINSUP));
    assert_eq!(cold.outcome, Outcome::Complete);
    assert!(!cold.stats.cache_hit);
    assert_eq!(first.metrics().get("mined_runs"), 1);
    first.shutdown();
    assert!(
        first.metrics().get("store_flushed_entries") >= 1,
        "shutdown must persist the cached result"
    );

    // "Restart": a brand-new service over the same directory.
    let second = MineService::start(store_cfg(&dir));
    let m = second.metrics();
    assert_eq!(m.get("store_artifacts_loaded"), 1);
    assert!(m.get("store_warm_entries") >= 1);
    assert_eq!(m.get("store_integrity_failures"), 0);
    let warm = second.mine(MineRequest::new(spec(), Kernel::Lcm, MINSUP));
    assert_eq!(warm.outcome, Outcome::Complete);
    assert!(warm.stats.cache_hit, "restart must answer from the store");
    assert_eq!(m.get("mined_runs"), 0, "zero mined_runs delta across restart");
    assert_eq!(
        warm.patterns, cold.patterns,
        "warm answer is byte-identical to the cold mine"
    );
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn damage_in_any_section_degrades_to_cold_rebuild() {
    // Populate a store once, then sweep damage across the header and
    // every section payload; each damaged copy must be detected and the
    // service must still serve the correct (re-mined) answer.
    let seed_dir = unique_dir("sweep-seed");
    let first = MineService::start(store_cfg(&seed_dir));
    let cold = first.mine(MineRequest::new(spec(), Kernel::Lcm, MINSUP));
    assert_eq!(cold.outcome, Outcome::Complete);
    first.shutdown();
    let artifact_path = store::scan(&seed_dir).unwrap().pop().expect("one artifact flushed");
    let clean = std::fs::read(&artifact_path).unwrap();
    let name = artifact_path.file_name().unwrap().to_owned();

    // Section payload offsets from the table: entries start at byte 16,
    // 24 bytes each (id u32, offset u64, len u64, crc u32).
    let entry = |i: usize| {
        let base = 16 + i * 24;
        let off = u64::from_le_bytes(clean[base + 4..base + 12].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(clean[base + 12..base + 20].try_into().unwrap()) as usize;
        (off, len)
    };
    // Damage targets: one byte inside the table itself, then the middle
    // byte of each of the seven payloads, then a truncation.
    let mut variants: Vec<(String, Vec<u8>)> = vec![("header".into(), {
        let mut b = clean.clone();
        b[20] ^= 0x10;
        b
    })];
    for i in 0..7 {
        let (off, len) = entry(i);
        let mut b = clean.clone();
        if len == 0 {
            continue;
        }
        b[off + len / 2] ^= 0x01;
        variants.push((format!("section-{i}"), b));
    }
    variants.push(("truncated".into(), clean[..clean.len() / 2].to_vec()));

    for (label, damaged) in variants {
        let dir = unique_dir(&format!("sweep-{label}"));
        std::fs::write(dir.join(&name), &damaged).unwrap();
        let svc = MineService::start(store_cfg(&dir));
        let m = svc.metrics();
        assert_eq!(
            m.get("store_integrity_failures"),
            1,
            "{label}: damage must be detected at load"
        );
        assert_eq!(m.get("store_artifacts_loaded"), 0, "{label}");
        assert_eq!(m.get("store_warm_entries"), 0, "{label}");
        let resp = svc.mine(MineRequest::new(spec(), Kernel::Lcm, MINSUP));
        assert_eq!(resp.outcome, Outcome::Complete, "{label}");
        assert!(!resp.stats.cache_hit, "{label}: no poison served as a hit");
        assert_eq!(m.get("mined_runs"), 1, "{label}: cold rebuild really mined");
        assert_eq!(
            resp.patterns, cold.patterns,
            "{label}: the fallback answer is byte-identical to the truth"
        );
        svc.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&seed_dir);
}

#[test]
fn offline_append_invalidates_persisted_results() {
    let dir = unique_dir("offline-append");
    let first = MineService::start(store_cfg(&dir));
    let cold = first.mine(MineRequest::new(spec(), Kernel::Lcm, MINSUP));
    assert_eq!(cold.outcome, Outcome::Complete);
    first.shutdown();

    // Append one transaction while no service is running: generation
    // bumps, persisted results become stale.
    let path = store::scan(&dir).unwrap().pop().unwrap();
    let mut artifact = store::Artifact::load(&path).unwrap();
    let report = store::append(&mut artifact, &[vec![1, 2, 3]]);
    assert_eq!(report.generation, 1);
    artifact.store(&path).unwrap();

    let second = MineService::start(store_cfg(&dir));
    let m = second.metrics();
    assert_eq!(m.get("store_artifacts_loaded"), 1, "appended artifact loads fine");
    assert_eq!(
        m.get("store_warm_entries"),
        0,
        "stale-generation results must not seed the cache"
    );
    let resp = second.mine(MineRequest::new(spec(), Kernel::Lcm, MINSUP));
    assert_eq!(resp.outcome, Outcome::Complete);
    assert_eq!(m.get("mined_runs"), 1, "the appended dataset re-mines");
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
