//! # `fpm-exec` — the unified mining executor
//!
//! PRs 1–3 grew each kernel a parallel, a controlled, and a probed
//! entry point; this crate collapses that matrix into one execution
//! path. A [`MinePlan`] names *what* to mine (kernel variant × minimum
//! support) and *how* (serial or the `fpm-par` work-stealing runtime,
//! deadline, pattern budget); [`MinePlan::execute`] is then the only
//! place in the workspace that wires the [`KernelSpine`] contract,
//! [`ControlledSink`] budget charging, and the deterministic
//! rank-ordered merge together. Every caller — the serve layer, the
//! CLI, benches, conformance tests — builds a plan instead of naming a
//! kernel function (also-lint rule R6 `kernel-entry` enforces this).
//!
//! The invariant inherited from PR 1 and kept by every plan: the
//! emitted pattern sequence is **byte-identical** to the kernel's
//! serial emission order — at every thread count, and, when a deadline,
//! budget, cancellation, or task panic trips the run, as a contiguous
//! prefix of it (DESIGN.md §11; a panic is caught at the task boundary
//! and surfaces as `StopCause::TaskPanicked`, never as an unwind
//! crossing the mining API).
//!
//! ```
//! use fpm::{CollectSink, TransactionDb};
//! use fpm_exec::MinePlan;
//!
//! let db = TransactionDb::from_transactions(vec![vec![1, 2], vec![1, 2, 3]]);
//! let mut sink = CollectSink::default();
//! let summary = MinePlan::by_label("lcm", 2)
//!     .unwrap()
//!     .threads(2)
//!     .execute(&db, &mut sink);
//! assert!(summary.complete);
//! assert_eq!(summary.emitted, sink.patterns.len() as u64);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use fpm::control::{MineControl, StopCause};
use fpm::exec::KernelSpine;
use fpm::query::TopKSink;
use fpm::types::MineKind;
use fpm::{CollectSink, ControlledSink, ItemsetCount, PatternQuery, PatternSink, TransactionDb};
use memsim::NullProbe;
use par::ParConfig;
use std::time::Duration;

/// One kernel variant: which miner runs and with which ablation flags.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelConfig {
    /// `fpm-lcm` with its [`lcm::LcmConfig`] variant flags.
    Lcm(lcm::LcmConfig),
    /// `fpm-eclat` with its [`eclat::EclatConfig`] variant flags.
    Eclat(eclat::EclatConfig),
    /// `fpm-fpgrowth` with its [`fpgrowth::FpConfig`] variant flags.
    FpGrowth(fpgrowth::FpConfig),
    /// The `fpm-apriori` reference miner (serial only, no variants).
    Apriori,
    /// The `fpm::hmine` reference miner (serial only, no variants).
    HMine,
}

impl KernelConfig {
    /// The all-patterns configuration of a service kernel.
    pub fn from_kernel(kernel: fpm::Kernel) -> KernelConfig {
        match kernel {
            fpm::Kernel::Lcm => KernelConfig::Lcm(lcm::LcmConfig::all()),
            fpm::Kernel::Eclat => KernelConfig::Eclat(eclat::EclatConfig::all()),
            fpm::Kernel::FpGrowth => KernelConfig::FpGrowth(fpgrowth::FpConfig::all()),
        }
    }

    /// Parses a kernel label (`lcm`, `eclat`, `fpgrowth`, `apriori`,
    /// `hmine`), yielding its all-patterns configuration.
    pub fn by_label(label: &str) -> Result<KernelConfig, String> {
        if let Some(k) = fpm::Kernel::by_label(label) {
            return Ok(KernelConfig::from_kernel(k));
        }
        match label.to_ascii_lowercase().as_str() {
            "apriori" => Ok(KernelConfig::Apriori),
            "hmine" => Ok(KernelConfig::HMine),
            _ => Err(format!("unknown kernel {label:?}")),
        }
    }

    /// Replaces the variant flags with the kernel's named Figure 8
    /// variant (`base`, `lex`, …, `all`). The reference miners have no
    /// variants and accept any name unchanged (they always run their
    /// one implementation).
    pub fn variant(self, name: &str) -> Result<KernelConfig, String> {
        fn pick<C>(
            kernel: &str,
            name: &str,
            variants: Vec<(&'static str, C)>,
        ) -> Result<C, String> {
            variants
                .into_iter()
                .find(|(n, _)| *n == name)
                .map(|(_, c)| c)
                .ok_or_else(|| format!("{kernel} has no variant {name:?}"))
        }
        match self {
            KernelConfig::Lcm(_) => Ok(KernelConfig::Lcm(pick("lcm", name, lcm::variants())?)),
            KernelConfig::Eclat(_) => {
                Ok(KernelConfig::Eclat(pick("eclat", name, eclat::variants())?))
            }
            KernelConfig::FpGrowth(_) => Ok(KernelConfig::FpGrowth(pick(
                "fpgrowth",
                name,
                fpgrowth::variants(),
            )?)),
            KernelConfig::Apriori | KernelConfig::HMine => Ok(self),
        }
    }

    /// The kernel's label.
    pub fn label(&self) -> &'static str {
        match self {
            KernelConfig::Lcm(_) => "lcm",
            KernelConfig::Eclat(_) => "eclat",
            KernelConfig::FpGrowth(_) => "fpgrowth",
            KernelConfig::Apriori => "apriori",
            KernelConfig::HMine => "hmine",
        }
    }

    /// Whether the kernel has a task-parallel spine. The reference
    /// miners (apriori, hmine) are serial-only.
    pub fn supports_parallel(&self) -> bool {
        !matches!(self, KernelConfig::Apriori | KernelConfig::HMine)
    }
}

/// How a plan schedules its root tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// In-order streaming on the calling thread.
    Serial,
    /// The `fpm-par` work-stealing runtime with a deterministic merge.
    Parallel(ParConfig),
}

/// What one [`MinePlan::execute`] run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecSummary {
    /// `true` iff the full serial emission sequence reached the sink —
    /// nothing tripped and no task was abandoned or truncated.
    pub complete: bool,
    /// Patterns delivered to the caller's sink.
    pub emitted: u64,
    /// Why the run stopped early, `None` when nothing tripped.
    pub stop_cause: Option<StopCause>,
}

impl ExecSummary {
    /// `true` iff this run's output is the *entire* serial emission
    /// sequence and may therefore be shared beyond the requester that
    /// triggered it — cached, or fanned out to coalesced requests whose
    /// own limits are applied as prefix cuts. A tripped or truncated
    /// run is only honest for the caller whose limit tripped it.
    pub fn shareable(&self) -> bool {
        self.complete && self.stop_cause.is_none()
    }
}

/// A mining run, fully described: kernel variant × minimum support ×
/// scheduling × limits. Build one, then [`execute`](MinePlan::execute)
/// it against any database; the output reaching the sink is always the
/// kernel's serial emission order (or, under a trip, a contiguous
/// prefix of it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinePlan {
    config: KernelConfig,
    minsup: u64,
    mode: Mode,
    deadline: Option<Duration>,
    max_patterns: Option<u64>,
    query: PatternQuery,
}

impl MinePlan {
    /// A serial, unlimited plan for `config` at `minsup`.
    pub fn new(config: KernelConfig, minsup: u64) -> MinePlan {
        MinePlan {
            config,
            minsup,
            mode: Mode::Serial,
            deadline: None,
            max_patterns: None,
            query: PatternQuery::all(),
        }
    }

    /// A plan for a service [`Kernel`](fpm::Kernel) (all-patterns
    /// configuration).
    pub fn kernel(kernel: fpm::Kernel, minsup: u64) -> MinePlan {
        Self::new(KernelConfig::from_kernel(kernel), minsup)
    }

    /// A plan parsed from a kernel label (`lcm`, …, `apriori`,
    /// `hmine`).
    pub fn by_label(label: &str, minsup: u64) -> Result<MinePlan, String> {
        Ok(Self::new(KernelConfig::by_label(label)?, minsup))
    }

    /// Selects a named Figure 8 variant for the plan's kernel.
    pub fn variant(mut self, name: &str) -> Result<MinePlan, String> {
        self.config = self.config.variant(name)?;
        Ok(self)
    }

    /// The plan's kernel configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// Worker thread count: `1` streams serially on the calling thread,
    /// `0` runs the work-stealing runtime with auto-detected
    /// parallelism, `n > 1` with `n` workers. Output is byte-identical
    /// across all values.
    pub fn threads(self, n: usize) -> MinePlan {
        match n {
            1 => MinePlan {
                mode: Mode::Serial,
                ..self
            },
            n => self.par_config(ParConfig::with_threads(n)),
        }
    }

    /// Full control over the work-stealing runtime (thread count and
    /// steal granularity). Always schedules through the runtime, even
    /// at one thread.
    pub fn par_config(self, par_cfg: ParConfig) -> MinePlan {
        MinePlan {
            mode: Mode::Parallel(par_cfg),
            ..self
        }
    }

    /// Arms a wall-clock deadline, measured from the `execute` call.
    pub fn deadline(self, deadline: Duration) -> MinePlan {
        MinePlan {
            deadline: Some(deadline),
            ..self
        }
    }

    /// Arms an emitted-pattern budget: the run stops after delivering
    /// the first `n` patterns of the serial order.
    pub fn max_patterns(self, n: u64) -> MinePlan {
        MinePlan {
            max_patterns: Some(n),
            ..self
        }
    }

    /// Selects which slice of the frequent set the plan answers with
    /// (DESIGN.md §15). The identity query keeps the streaming path; any
    /// other query mines the complete All-class set first (so the prefix
    /// contract holds unchanged), applies the query as a pure function
    /// of the serial-order list, and delivers the answer through the
    /// control — budgets charge per *query result*, and the output is
    /// byte-identical at every thread count. A run whose collection
    /// phase trips (deadline, cancel, task panic) delivers the empty
    /// prefix rather than an unfounded partial answer.
    pub fn query(self, query: PatternQuery) -> MinePlan {
        MinePlan { query, ..self }
    }

    /// The plan's pattern query.
    pub fn pattern_query(&self) -> &PatternQuery {
        &self.query
    }

    /// Runs the plan, delivering patterns (original item ids, serial
    /// emission order) to `sink`. Arms a fresh [`MineControl`] from the
    /// plan's deadline and budget; use
    /// [`execute_controlled`](MinePlan::execute_controlled) to share an
    /// externally owned control (the serve layer's cancellation path).
    pub fn execute<S: PatternSink>(&self, db: &TransactionDb, sink: &mut S) -> ExecSummary {
        let control = MineControl::new(self.deadline, self.max_patterns);
        self.execute_controlled(db, &control, sink)
    }

    /// [`execute`](MinePlan::execute) under a caller-owned
    /// [`MineControl`] — arm deadlines/budgets on the control itself
    /// (the plan's own `deadline`/`max_patterns` are ignored here).
    pub fn execute_controlled<S: PatternSink>(
        &self,
        db: &TransactionDb,
        control: &MineControl,
        sink: &mut S,
    ) -> ExecSummary {
        if !self.query.is_all() {
            return self.execute_query(db, control, sink);
        }
        let mut tally = Tally { inner: sink, emitted: 0 };
        let complete = match &self.config {
            KernelConfig::Lcm(cfg) => {
                drive::<lcm::LcmSpine, _>(db, cfg, self.minsup, self.mode, control, &mut tally)
            }
            KernelConfig::Eclat(cfg) => {
                drive::<eclat::EclatSpine, _>(db, cfg, self.minsup, self.mode, control, &mut tally)
            }
            KernelConfig::FpGrowth(cfg) => {
                drive::<fpgrowth::FpSpine, _>(db, cfg, self.minsup, self.mode, control, &mut tally)
            }
            KernelConfig::Apriori => {
                let mut controlled = ControlledSink::new(control, &mut tally);
                apriori::mine(db, self.minsup, &mut controlled);
                controlled.suppressed == 0 && !control.should_stop()
            }
            KernelConfig::HMine => {
                let mut controlled = ControlledSink::new(control, &mut tally);
                fpm::hmine::mine(db, self.minsup, &mut controlled);
                controlled.suppressed == 0 && !control.should_stop()
            }
        };
        ExecSummary {
            complete,
            emitted: tally.emitted,
            stop_cause: control.stop_cause(),
        }
    }

    /// The non-identity query path: collect the complete All-class set
    /// (deadline/cancel/panic still trip the collection cooperatively;
    /// the budget is *not* charged while collecting), apply the query,
    /// then deliver the answer through the control so the budget charges
    /// exactly one unit per query result. Serial and parallel modes feed
    /// the same serial-order list into [`PatternQuery::apply`], so the
    /// delivered bytes are identical at every thread count.
    fn execute_query<S: PatternSink>(
        &self,
        db: &TransactionDb,
        control: &MineControl,
        sink: &mut S,
    ) -> ExecSummary {
        let (all, collected) = self.collect_query_input(db, control);
        if !collected {
            // The collection tripped: a partial All-set cannot support
            // closedness/rules/top-k claims, so the honest answer is the
            // empty prefix with the stop cause attached.
            return ExecSummary {
                complete: false,
                emitted: 0,
                stop_cause: control.stop_cause(),
            };
        }
        let answer = self.query.apply(all, db.len() as u64);
        let mut tally = Tally { inner: sink, emitted: 0 };
        let mut controlled = ControlledSink::new(control, &mut tally);
        for p in &answer {
            controlled.emit(&p.items, p.support);
        }
        let complete = controlled.suppressed == 0;
        ExecSummary {
            complete,
            emitted: tally.emitted,
            stop_cause: control.stop_cause(),
        }
    }

    /// Collects the complete frequent set for the query path. For a pure
    /// top-k query the serial mode streams through a [`TopKSink`], which
    /// raises the control's dynamic support floor as its heap fills (its
    /// output equals the collect-then-select result by construction);
    /// every other shape collects the full set.
    fn collect_query_input(
        &self,
        db: &TransactionDb,
        control: &MineControl,
    ) -> (Vec<ItemsetCount>, bool) {
        let fast_top_k = match (self.query.class, self.query.rules, self.query.top_k) {
            (MineKind::All, None, Some(k)) => Some(k),
            _ => None,
        };
        match &self.config {
            KernelConfig::Lcm(cfg) => {
                collect::<lcm::LcmSpine>(db, cfg, self.minsup, self.mode, control, fast_top_k)
            }
            KernelConfig::Eclat(cfg) => {
                collect::<eclat::EclatSpine>(db, cfg, self.minsup, self.mode, control, fast_top_k)
            }
            KernelConfig::FpGrowth(cfg) => {
                collect::<fpgrowth::FpSpine>(db, cfg, self.minsup, self.mode, control, fast_top_k)
            }
            KernelConfig::Apriori => {
                let mut sink = CollectSink::default();
                apriori::mine(db, self.minsup, &mut sink);
                (sink.patterns, !control.should_stop())
            }
            KernelConfig::HMine => {
                let mut sink = CollectSink::default();
                fpm::hmine::mine(db, self.minsup, &mut sink);
                (sink.patterns, !control.should_stop())
            }
        }
    }
}

/// Counts deliveries on their way to the caller's sink.
struct Tally<'a, S> {
    inner: &'a mut S,
    emitted: u64,
}

impl<S: PatternSink> PatternSink for Tally<'_, S> {
    #[inline]
    fn emit(&mut self, itemset: &[u32], support: u64) {
        self.emitted += 1;
        self.inner.emit(itemset, support);
    }
}

/// The one generic driver behind every spine kernel: prepare once,
/// enumerate root tasks in serial emission order, then either stream
/// them in order (serial) or deal them to the work-stealing runtime and
/// merge per-task buffers back in task order (parallel). Returns `true`
/// iff the full serial sequence reached `sink`.
fn drive<K: KernelSpine, S: PatternSink>(
    db: &TransactionDb,
    cfg: &K::Config,
    minsup: u64,
    mode: Mode,
    control: &MineControl,
    sink: &mut S,
) -> bool {
    let prepared = K::prepare(db, minsup, cfg);
    let tasks = K::root_tasks(&prepared);
    match mode {
        Mode::Serial => {
            // One controlled sink around the caller's: emissions stream
            // straight through in task order, each charged against the
            // control's budget exactly as the kernels' retired serial
            // controlled entry points did. A panicking task is caught
            // at the task boundary: every emission is a whole line, so
            // what already streamed is still a clean serial prefix, and
            // the control records the failure as the first cause.
            let mut controlled = ControlledSink::new(control, sink);
            let mut probe = NullProbe;
            let mut cut = false;
            for task in tasks {
                if control.should_stop() {
                    cut = true;
                    break;
                }
                let done = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    K::mine_task(&prepared, task, &mut probe, control, &mut controlled)
                }));
                match done {
                    Ok(true) => {}
                    Ok(false) => {
                        cut = true;
                        break;
                    }
                    Err(_payload) => {
                        control.trip_panicked();
                        cut = true;
                        break;
                    }
                }
            }
            !cut && controlled.suppressed == 0
        }
        Mode::Parallel(par_cfg) => {
            // Each task mines into a private buffer whose completeness
            // is tracked per task; the rank-ordered prefix replay then
            // restores the serial sequence (or a contiguous prefix of
            // it when anything tripped). The settled runtime hands a
            // task panic back as a value — the failed task's buffer
            // slot is None, so the replay cuts before it — and the
            // control records it as the first cause instead of letting
            // the unwind cross the mining API.
            let prepared = &prepared;
            let (buffers, panic) = par::run_with_state_until_settled(
                tasks,
                &par_cfg,
                || control.should_stop(),
                |_worker| (),
                |(), task| {
                    let mut controlled = ControlledSink::new(control, CollectSink::default());
                    let done =
                        K::mine_task(prepared, task, &mut NullProbe, control, &mut controlled);
                    let complete = done && controlled.suppressed == 0;
                    (controlled.into_inner().patterns, complete)
                },
            );
            if panic.is_some() {
                control.trip_panicked();
            }
            fpm::replay_merged_prefix(buffers, sink) && panic.is_none()
        }
    }
}

/// The query path's collection driver: like [`drive`], but the sink is
/// *not* budget-charged — the control still trips collection on
/// deadline/cancel/panic, and the returned flag says whether the full
/// serial sequence was captured. Serial mode streams into `sink` (a
/// [`CollectSink`] or the top-k fast path's [`TopKSink`]); parallel mode
/// buffers per task and replay-merges in rank order, so both produce the
/// same serial-order list.
fn collect<K: KernelSpine>(
    db: &TransactionDb,
    cfg: &K::Config,
    minsup: u64,
    mode: Mode,
    control: &MineControl,
    fast_top_k: Option<u64>,
) -> (Vec<ItemsetCount>, bool) {
    let prepared = K::prepare(db, minsup, cfg);
    let tasks = K::root_tasks(&prepared);
    match mode {
        Mode::Serial => match fast_top_k {
            Some(k) => {
                let mut sink = TopKSink::new(k, control);
                let complete = serial_tasks::<K, _>(&prepared, tasks, control, &mut sink);
                (sink.finish(), complete)
            }
            None => {
                let mut sink = CollectSink::default();
                let complete = serial_tasks::<K, _>(&prepared, tasks, control, &mut sink);
                (sink.patterns, complete)
            }
        },
        Mode::Parallel(par_cfg) => {
            let prepared = &prepared;
            let (buffers, panic) = par::run_with_state_until_settled(
                tasks,
                &par_cfg,
                || control.should_stop(),
                |_worker| (),
                |(), task| {
                    let mut sink = CollectSink::default();
                    let done = K::mine_task(prepared, task, &mut NullProbe, control, &mut sink);
                    (sink.patterns, done)
                },
            );
            if panic.is_some() {
                control.trip_panicked();
            }
            let mut merged = CollectSink::default();
            let complete = fpm::replay_merged_prefix(buffers, &mut merged) && panic.is_none();
            (merged.patterns, complete)
        }
    }
}

/// Streams root tasks in serial order into `sink` with panic capture,
/// returning `true` iff every task ran to completion.
fn serial_tasks<K: KernelSpine, S: PatternSink>(
    prepared: &K::Prepared,
    tasks: Vec<K::Task>,
    control: &MineControl,
    sink: &mut S,
) -> bool {
    let mut probe = NullProbe;
    for task in tasks {
        if control.should_stop() {
            return false;
        }
        let done = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            K::mine_task(prepared, task, &mut probe, control, sink)
        }));
        match done {
            Ok(true) => {}
            Ok(false) => return false,
            Err(_payload) => {
                control.trip_panicked();
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpm::types::canonicalize;
    use fpm::{CollectSink, ItemsetCount, RecordSink};

    fn toy() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            vec![0, 2, 5],
            vec![1, 2, 5],
            vec![0, 2, 5],
            vec![3, 4],
            vec![0, 1, 2, 3, 4, 5],
        ])
    }

    fn serial_reference(kernel: fpm::Kernel, db: &TransactionDb, minsup: u64) -> Vec<u8> {
        let mut sink = RecordSink::default();
        match kernel {
            fpm::Kernel::Lcm => {
                lcm::mine(db, minsup, &lcm::LcmConfig::all(), &mut sink);
            }
            fpm::Kernel::Eclat => {
                eclat::mine(db, minsup, &eclat::EclatConfig::all(), &mut sink);
            }
            fpm::Kernel::FpGrowth => {
                fpgrowth::mine(db, minsup, &fpgrowth::FpConfig::all(), &mut sink);
            }
        }
        sink.bytes
    }

    #[test]
    fn plan_output_is_byte_identical_to_serial_mine() {
        let db = toy();
        for kernel in fpm::Kernel::ALL {
            let want = serial_reference(kernel, &db, 2);
            for threads in [1usize, 0, 2, 7] {
                let mut sink = RecordSink::default();
                let summary = MinePlan::kernel(kernel, 2).threads(threads).execute(&db, &mut sink);
                assert!(summary.complete, "{} threads={threads}", kernel.label());
                assert_eq!(summary.stop_cause, None);
                assert_eq!(sink.bytes, want, "{} threads={threads}", kernel.label());
            }
        }
    }

    #[test]
    fn budget_cuts_to_exact_serial_prefix() {
        let db = toy();
        for kernel in fpm::Kernel::ALL {
            let full = serial_reference(kernel, &db, 2);
            let full_lines: Vec<&[u8]> = full.split_inclusive(|&b| b == b'\n').collect();
            for budget in [0u64, 1, 3, full_lines.len() as u64 + 5] {
                for threads in [1usize, 3] {
                    let mut sink = RecordSink::default();
                    let summary = MinePlan::kernel(kernel, 2)
                        .threads(threads)
                        .max_patterns(budget)
                        .execute(&db, &mut sink);
                    let cap = budget.min(full_lines.len() as u64) as usize;
                    // Serial delivers exactly the first `budget` patterns;
                    // parallel charges the shared budget in racing task
                    // order, so it may keep fewer — but what it keeps is
                    // always a contiguous serial prefix.
                    let got_lines = sink.bytes.split_inclusive(|&b| b == b'\n').count();
                    if threads == 1 {
                        assert_eq!(got_lines, cap, "{} budget={budget}", kernel.label());
                    } else {
                        assert!(got_lines <= cap, "{} budget={budget}", kernel.label());
                    }
                    let want_bytes: Vec<u8> = full_lines[..got_lines]
                        .iter()
                        .flat_map(|l| l.iter().copied())
                        .collect();
                    assert_eq!(
                        sink.bytes,
                        want_bytes,
                        "{} threads={threads} budget={budget}",
                        kernel.label()
                    );
                    assert_eq!(summary.emitted, got_lines as u64);
                    if budget < full_lines.len() as u64 {
                        assert!(!summary.complete);
                        assert_eq!(summary.stop_cause, Some(StopCause::BudgetExhausted));
                    } else {
                        assert!(summary.complete, "{} threads={threads}", kernel.label());
                    }
                }
            }
        }
    }

    #[test]
    fn external_control_cancellation_yields_empty_prefix() {
        let db = toy();
        let control = MineControl::unlimited();
        control.cancel();
        for kernel in fpm::Kernel::ALL {
            let mut sink = CollectSink::default();
            let summary =
                MinePlan::kernel(kernel, 2).threads(3).execute_controlled(&db, &control, &mut sink);
            assert!(sink.patterns.is_empty(), "{}", kernel.label());
            assert!(!summary.complete);
            assert_eq!(summary.stop_cause, Some(StopCause::Cancelled));
        }
    }

    #[test]
    fn labels_variants_and_errors() {
        assert!(MinePlan::by_label("lcm", 2).unwrap().variant("tile").is_ok());
        assert!(MinePlan::by_label("eclat", 2).unwrap().variant("simd").is_ok());
        let err = MinePlan::by_label("eclat", 2).unwrap().variant("tile").unwrap_err();
        assert!(err.contains("eclat has no variant"), "{err}");
        let err = MinePlan::by_label("nope", 1).unwrap_err();
        assert!(err.contains("unknown kernel"), "{err}");
        // Reference miners: no variants, serial-only.
        let plan = MinePlan::by_label("apriori", 1).unwrap();
        assert!(!plan.config().supports_parallel());
        assert!(MinePlan::by_label("hmine", 1).unwrap().variant("anything").is_ok());
    }

    #[test]
    fn reference_miners_mine_and_respect_budget() {
        let db = toy();
        let mut expect = CollectSink::default();
        apriori::mine(&db, 2, &mut expect);
        let mut got = CollectSink::default();
        let summary = MinePlan::by_label("apriori", 2).unwrap().execute(&db, &mut got);
        assert!(summary.complete);
        assert_eq!(
            canonicalize(got.patterns.clone()),
            canonicalize(expect.patterns)
        );

        let mut cut: CollectSink = CollectSink::default();
        let summary = MinePlan::by_label("hmine", 2).unwrap().max_patterns(3).execute(&db, &mut cut);
        assert_eq!(cut.patterns.len(), 3);
        assert!(!summary.complete);
        assert_eq!(summary.stop_cause, Some(StopCause::BudgetExhausted));
    }

    #[test]
    fn empty_database_is_complete_and_empty() {
        for threads in [1usize, 4] {
            let mut sink = CollectSink::default();
            let summary = MinePlan::kernel(fpm::Kernel::Lcm, 1)
                .threads(threads)
                .execute(&TransactionDb::default(), &mut sink);
            assert!(summary.complete);
            assert_eq!(summary.emitted, 0);
            assert!(sink.patterns.is_empty());
        }
    }

    #[test]
    fn steal_granularity_does_not_change_output() {
        let db = toy();
        let want = serial_reference(fpm::Kernel::Eclat, &db, 1);
        for granularity in [1usize, 2, 8] {
            let mut sink = RecordSink::default();
            MinePlan::kernel(fpm::Kernel::Eclat, 1)
                .par_config(ParConfig {
                    n_threads: 4,
                    steal_granularity: granularity,
                })
                .execute(&db, &mut sink);
            assert_eq!(sink.bytes, want, "granularity={granularity}");
        }
    }

    #[test]
    fn query_plans_match_oracle_and_are_thread_invariant() {
        use fpm::types::MineKind;
        use fpm::{naive, PatternQuery, RuleSpec};
        let db = toy();
        let n = db.len() as u64;
        let queries = [
            PatternQuery::class(MineKind::Closed),
            PatternQuery::class(MineKind::Maximal),
            PatternQuery::all().top_k(4),
            PatternQuery::class(MineKind::Closed).top_k(3),
            PatternQuery::all().rules(RuleSpec { min_confidence: 0.5, min_lift: 1.0 }),
        ];
        for q in queries {
            let naive_want = q.apply(naive::mine(&db, 2), n);
            for kernel in fpm::Kernel::ALL {
                // Tie-breaking inside top-k follows the kernel's serial
                // rank, so the per-kernel oracle applies the query to the
                // kernel's own serial All-class output.
                let mut all = CollectSink::default();
                MinePlan::kernel(kernel, 2).execute(&db, &mut all);
                let want = q.apply(all.patterns, n);
                let mut reference: Option<Vec<u8>> = None;
                for threads in [1usize, 2, 4] {
                    let mut sink = RecordSink::default();
                    let summary = MinePlan::kernel(kernel, 2)
                        .query(q)
                        .threads(threads)
                        .execute(&db, &mut sink);
                    assert!(summary.complete, "{} {} t={threads}", kernel.label(), q.label());
                    assert_eq!(summary.emitted, want.len() as u64);
                    match &reference {
                        None => reference = Some(sink.bytes.clone()),
                        Some(r) => assert_eq!(
                            &sink.bytes,
                            r,
                            "{} {} t={threads}",
                            kernel.label(),
                            q.label()
                        ),
                    }
                    // The emitted list is exactly the per-kernel oracle,
                    // and (tie-free queries) the naive oracle's set.
                    let mut collect = CollectSink::default();
                    MinePlan::kernel(kernel, 2).query(q).threads(threads).execute(&db, &mut collect);
                    assert_eq!(collect.patterns, want, "{} {}", kernel.label(), q.label());
                    if q.top_k.is_none() {
                        assert_eq!(
                            canonicalize(collect.patterns),
                            canonicalize(naive_want.clone()),
                            "{} {}",
                            kernel.label(),
                            q.label()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn query_budget_cuts_to_prefix_of_query_answer() {
        use fpm::types::MineKind;
        use fpm::PatternQuery;
        let db = toy();
        let q = PatternQuery::class(MineKind::Closed);
        for kernel in fpm::Kernel::ALL {
            let mut full = RecordSink::default();
            MinePlan::kernel(kernel, 2).query(q).execute(&db, &mut full);
            let lines: Vec<&[u8]> = full.bytes.split_inclusive(|&b| b == b'\n').collect();
            assert!(lines.len() > 2);
            for threads in [1usize, 3] {
                let mut cut = RecordSink::default();
                let summary = MinePlan::kernel(kernel, 2)
                    .query(q)
                    .threads(threads)
                    .max_patterns(2)
                    .execute(&db, &mut cut);
                // Budgets charge per query result: exactly 2 delivered,
                // and they are the first 2 lines of the full answer at
                // any thread count.
                assert_eq!(summary.emitted, 2, "{} t={threads}", kernel.label());
                assert!(!summary.complete);
                assert_eq!(summary.stop_cause, Some(StopCause::BudgetExhausted));
                let want: Vec<u8> = lines[..2].iter().flat_map(|l| l.iter().copied()).collect();
                assert_eq!(cut.bytes, want, "{} t={threads}", kernel.label());
            }
        }
    }

    #[test]
    fn cancelled_query_run_delivers_empty_prefix() {
        use fpm::PatternQuery;
        let db = toy();
        let control = MineControl::unlimited();
        control.cancel();
        let mut sink = CollectSink::default();
        let summary = MinePlan::kernel(fpm::Kernel::Lcm, 2)
            .query(PatternQuery::all().top_k(3))
            .execute_controlled(&db, &control, &mut sink);
        assert!(sink.patterns.is_empty(), "tripped collection must not leak a partial answer");
        assert!(!summary.complete);
        assert_eq!(summary.emitted, 0);
        assert_eq!(summary.stop_cause, Some(StopCause::Cancelled));
    }

    #[test]
    fn serial_top_k_raises_support_floor_through_control() {
        use fpm::PatternQuery;
        let db = toy();
        let control = MineControl::unlimited();
        let mut sink = CollectSink::default();
        let summary = MinePlan::kernel(fpm::Kernel::Eclat, 1)
            .query(PatternQuery::all().top_k(2))
            .execute_controlled(&db, &control, &mut sink);
        assert!(summary.complete);
        assert_eq!(sink.patterns.len(), 2);
        assert!(
            control.support_floor() > 0,
            "the streaming top-k path must publish its dynamic floor"
        );
    }

    #[test]
    fn reference_miners_answer_queries_too() {
        use fpm::types::MineKind;
        use fpm::{naive, PatternQuery};
        let db = toy();
        let want = PatternQuery::class(MineKind::Maximal).apply(naive::mine(&db, 2), db.len() as u64);
        for label in ["apriori", "hmine"] {
            let mut sink = CollectSink::default();
            let summary = MinePlan::by_label(label, 2)
                .unwrap()
                .query(PatternQuery::class(MineKind::Maximal))
                .execute(&db, &mut sink);
            assert!(summary.complete, "{label}");
            assert_eq!(canonicalize(sink.patterns), canonicalize(want.clone()), "{label}");
        }
    }

    #[test]
    fn canonical_sets_agree_across_kernels() {
        let db = toy();
        let mut reference: Option<Vec<ItemsetCount>> = None;
        for label in ["lcm", "eclat", "fpgrowth", "apriori", "hmine"] {
            let mut sink = CollectSink::default();
            MinePlan::by_label(label, 2).unwrap().execute(&db, &mut sink);
            let got = canonicalize(sink.patterns);
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(&got, want, "{label}"),
            }
        }
    }
}
