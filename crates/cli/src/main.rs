//! `fpm-mine` — command-line frequent itemset miner.
//!
//! ```text
//! fpm-mine --input db.dat --minsup 100 --kernel lcm --variant all
//! fpm-mine --dataset ds1 --scale smoke --kernel eclat --variant simd --out patterns.txt
//! fpm-mine --dataset ds3 --scale ci --kernel fpgrowth --variant base --count-only
//! fpm-mine --input db.dat --minsup 50 --kernel lcm --advise
//! fpm-mine --dataset ds1 --scale smoke --class closed --top-k 10
//! fpm-mine rules --dataset ds1 --scale smoke --min-confidence 0.8
//! fpm-mine serve --stdio
//! fpm-mine serve --addr 127.0.0.1:7878 --workers 4 --mine-threads 4
//! fpm-mine store build --dir artifacts --dataset ds1 --scale smoke
//! fpm-mine store inspect --dir artifacts --format json
//! fpm-mine serve --stdio --store-dir artifacts
//! ```
//!
//! The `serve` subcommand runs the `fpm-serve` mining service: one JSON
//! request per input line, one JSON response per output line (see the
//! README's `serve` quickstart for the request shape). With
//! `--store-dir` the service warm-starts from persisted artifacts and
//! flushes its result cache back on shutdown; the `store` subcommand
//! builds, inspects, verifies and appends to those artifacts offline.
//!
//! Kernels: `lcm` (default), `eclat`, `fpgrowth`, `apriori`, `hmine`.
//! Variants: each kernel's Figure 8 columns (`base`, `lex`, …, `all`);
//! `--advise` lets the input-profile advisor pick the pattern set.
//! `--threads N` mines on the shared work-stealing runtime (`fpm-par`);
//! `0` auto-detects the host parallelism. Parallel output is identical
//! to serial for every kernel × variant.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use fpm::{CollectSink, CountSink, PatternSink, TransactionDb};
use quest::{Dataset, Scale};
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    input: Option<String>,
    dataset: Option<Dataset>,
    scale: Scale,
    minsup: Option<u64>,
    kernel: String,
    variant: String,
    out: Option<String>,
    count_only: bool,
    advise: bool,
    profile: bool,
    kind: fpm::MineKind,
    top_k: Option<u64>,
    threads: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: fpm-mine (--input FILE.dat | --dataset ds1..ds4 [--scale smoke|ci|full])
                [--minsup N] [--kernel lcm|eclat|fpgrowth|apriori|hmine]
                [--variant base|lex|reorg|pref|tile|simd|all] [--advise]
                [--class all|closed|maximal] [--top-k N]
                [--out FILE] [--count-only] [--profile] [--threads N]
       fpm-mine rules ... (association rules; `fpm-mine rules --help`)

  --minsup defaults to the dataset's Table 6 support (required for --input)
  --advise lets the input profile choose the pattern set (overrides --variant)
  --class  mines a pattern query (--kind is an accepted alias); --top-k keeps
           the k best by (support desc, serial rank asc), in that order
  --profile prints the input profile and the advisor's recommendation
  --threads mines on the work-stealing runtime (0 = auto; lcm/eclat/fpgrowth)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args {
        input: None,
        dataset: None,
        scale: Scale::Ci,
        minsup: None,
        kernel: "lcm".into(),
        variant: "all".into(),
        out: None,
        count_only: false,
        advise: false,
        profile: false,
        kind: fpm::MineKind::All,
        top_k: None,
        threads: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--input" => a.input = Some(value(&mut i)),
            "--dataset" => {
                a.dataset = Some(Dataset::by_label(&value(&mut i)).unwrap_or_else(|| usage()))
            }
            "--scale" => a.scale = Scale::by_label(&value(&mut i)).unwrap_or_else(|| usage()),
            "--minsup" => a.minsup = value(&mut i).parse().ok(),
            "--kernel" => a.kernel = value(&mut i),
            "--variant" => a.variant = value(&mut i),
            "--out" => a.out = Some(value(&mut i)),
            "--count-only" => a.count_only = true,
            "--class" | "--kind" => {
                a.kind = fpm::MineKind::by_label(&value(&mut i)).unwrap_or_else(|| usage())
            }
            "--top-k" => a.top_k = value(&mut i).parse().ok().or_else(|| usage()),
            "--threads" => a.threads = value(&mut i).parse().ok().or_else(|| usage()),
            "--advise" => a.advise = true,
            "--profile" => a.profile = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other}");
                usage()
            }
        }
        i += 1;
    }
    if a.input.is_none() && a.dataset.is_none() {
        usage();
    }
    a
}

fn load(a: &Args) -> (TransactionDb, u64) {
    if let Some(path) = &a.input {
        let db = fpm::io::read_dat_file(path).unwrap_or_else(|e| {
            eprintln!("error reading {path}: {e}");
            std::process::exit(1);
        });
        let minsup = a.minsup.unwrap_or_else(|| {
            eprintln!("--minsup is required with --input");
            std::process::exit(2);
        });
        (db, minsup)
    } else {
        let ds = a.dataset.expect("checked in parse_args");
        let db = ds.generate(a.scale);
        (db, a.minsup.unwrap_or_else(|| ds.support(a.scale)))
    }
}

fn advised_variant(db: &TransactionDb, minsup: u64, kernel: &str) -> String {
    use also::catalog::Kernel;
    let k = match kernel {
        "lcm" => Kernel::Lcm,
        "eclat" => Kernel::Eclat,
        "fpgrowth" => Kernel::FpGrowth,
        _ => return "all".into(),
    };
    let profile = fpm::metrics::profile(db, minsup);
    let picks = also::advisor::advise(&profile, k, &also::advisor::AdvisorConfig::default());
    // map the advised pattern set onto the closest named variant
    use also::catalog::Pattern::*;
    let has = |p| picks.contains(&p);
    match k {
        Kernel::Lcm => {
            if has(LexicographicOrdering) && has(Tiling) {
                "all".into()
            } else if has(Tiling) {
                "tile".into()
            } else if has(LexicographicOrdering) {
                "lex".into()
            } else {
                "reorg".into()
            }
        }
        Kernel::Eclat => {
            if has(LexicographicOrdering) {
                "all".into()
            } else {
                "simd".into()
            }
        }
        Kernel::FpGrowth => {
            if has(LexicographicOrdering) && has(SoftwarePrefetch) {
                "all".into()
            } else if has(SoftwarePrefetch) {
                "pref".into()
            } else {
                "reorg".into()
            }
        }
    }
}

fn mine_with<S: PatternSink>(
    kernel: &str,
    variant: &str,
    db: &TransactionDb,
    minsup: u64,
    threads: Option<usize>,
    query: fpm::PatternQuery,
    sink: &mut S,
) -> Result<(), String> {
    let mut plan = exec::MinePlan::by_label(kernel, minsup)?
        .variant(variant)?
        .query(query);
    if let Some(n) = threads {
        if !plan.config().supports_parallel() {
            return Err(format!(
                "--threads is not supported for {}",
                plan.config().label()
            ));
        }
        plan = plan.threads(n);
    }
    plan.execute(db, sink);
    Ok(())
}

fn rules_usage() -> ! {
    eprintln!(
        "usage: fpm-mine rules (--input FILE.dat | --dataset ds1..ds4 [--scale smoke|ci|full])
                      [--minsup N] [--kernel lcm|eclat|fpgrowth|apriori|hmine]
                      --min-confidence X [--min-lift X] [--limit N]

  mines the complete frequent set, generates every single-consequent
  association rule `antecedent => consequent` that clears the thresholds,
  and prints one rule per line (support, confidence, lift) in
  deterministic order: serial rank of the source itemset, then consequent.

  --min-confidence  required, in [0, 1]
  --min-lift        default 0 (1.0 = no better than independence)
  --limit           print at most N rules (all are still counted)"
    );
    std::process::exit(2);
}

fn run_rules(argv: &[String]) -> ExitCode {
    let mut input: Option<String> = None;
    let mut dataset: Option<Dataset> = None;
    let mut scale = Scale::Ci;
    let mut minsup: Option<u64> = None;
    let mut kernel = "lcm".to_string();
    let mut spec: Option<fpm::RuleSpec> = None;
    let mut min_lift = 0.0f64;
    let mut limit: Option<usize> = None;
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| rules_usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--input" => input = Some(value(&mut i)),
            "--dataset" => {
                dataset = Some(Dataset::by_label(&value(&mut i)).unwrap_or_else(|| rules_usage()))
            }
            "--scale" => scale = Scale::by_label(&value(&mut i)).unwrap_or_else(|| rules_usage()),
            "--minsup" => minsup = value(&mut i).parse().ok(),
            "--kernel" => kernel = value(&mut i),
            "--min-confidence" => {
                let c: f64 = value(&mut i).parse().unwrap_or_else(|_| rules_usage());
                if !(0.0..=1.0).contains(&c) {
                    eprintln!("--min-confidence must be in [0, 1]");
                    return ExitCode::from(2);
                }
                spec = Some(fpm::RuleSpec::confidence(c));
            }
            "--min-lift" => {
                min_lift = value(&mut i).parse().unwrap_or_else(|_| rules_usage());
                if !min_lift.is_finite() || min_lift < 0.0 {
                    eprintln!("--min-lift must be finite and non-negative");
                    return ExitCode::from(2);
                }
            }
            "--limit" => limit = value(&mut i).parse().ok().or_else(|| rules_usage()),
            "--help" | "-h" => rules_usage(),
            other => {
                eprintln!("unknown rules argument {other}");
                rules_usage()
            }
        }
        i += 1;
    }
    let Some(mut spec) = spec else {
        eprintln!("rules needs --min-confidence");
        rules_usage()
    };
    spec.min_lift = min_lift;
    let args = Args {
        input,
        dataset,
        scale,
        minsup,
        kernel: kernel.clone(),
        variant: "all".into(),
        out: None,
        count_only: false,
        advise: false,
        profile: false,
        kind: fpm::MineKind::All,
        top_k: None,
        threads: None,
    };
    if args.input.is_none() && args.dataset.is_none() {
        rules_usage();
    }
    let (db, minsup) = load(&args);
    let mut sink = CollectSink::default();
    if let Err(e) = mine_with(
        &kernel,
        "all",
        &db,
        minsup,
        None,
        fpm::PatternQuery::all(),
        &mut sink,
    ) {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }
    let rules = fpm::query::rules(&sink.patterns, db.len() as u64, &spec);
    eprintln!(
        "{} rule(s) from {} frequent itemsets at minsup {} (min_confidence {}, min_lift {})",
        rules.len(),
        sink.patterns.len(),
        minsup,
        spec.min_confidence,
        spec.min_lift
    );
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    for rule in rules.iter().take(limit.unwrap_or(usize::MAX)) {
        let antecedent = rule
            .antecedent
            .iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        if writeln!(
            lock,
            "{antecedent} => {} ({}, {:.4}, {:.4})",
            rule.consequent, rule.support, rule.confidence, rule.lift
        )
        .is_err()
        {
            break;
        }
    }
    lock.flush().ok();
    ExitCode::SUCCESS
}

fn serve_usage() -> ! {
    eprintln!(
        "usage: fpm-mine serve (--stdio | --addr HOST:PORT)
                [--shards N] [--workers N] [--queue-depth N]
                [--cache N] [--cache-bytes N] [--cache-ttl-ms N]
                [--mine-threads N] [--max-bound X]
                [--store-dir DIR] [--poll] [--max-conns N]

  one JSON request per line in, one JSON response per line out, e.g.
  {{\"dataset\":{{\"name\":\"ds1\",\"scale\":\"smoke\"}},\"kernel\":\"lcm\",
    \"min_support\":30,\"deadline_ms\":5000,\"max_patterns\":1000}}

  --shards        dataset shards, each with its own queue+cache (default 1)
  --workers       worker threads draining each shard's queue (default 2)
  --queue-depth   queued jobs beyond which submissions reject (default 64)
  --cache         result-cache entries per shard, 0 disables (default 32)
  --cache-bytes   byte budget per shard cache, 0 = none (default 0)
  --cache-ttl-ms  cached results older than this re-mine (default: never)
  --mine-threads  threads per mining run, >1 uses the par runtime (default serial)
  --max-bound     admission ceiling on the candidate bound (default unlimited)
  --store-dir     persistent artifact store: warm-start cached results on
                  boot, flush the result cache there on shutdown
  --poll          with --addr: one event-driven frontend thread instead of
                  a thread per connection
  --max-conns     with --addr: exit after N connections (default: serve forever)"
    );
    std::process::exit(2);
}

fn run_serve(argv: &[String]) -> ExitCode {
    let mut cfg = serve::ServeConfig::default();
    let mut addr: Option<String> = None;
    let mut stdio = false;
    let mut poll = false;
    let mut max_conns: Option<usize> = None;
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| serve_usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--stdio" => stdio = true,
            "--addr" => addr = Some(value(&mut i)),
            "--poll" => poll = true,
            "--shards" => cfg.shards = value(&mut i).parse().unwrap_or_else(|_| serve_usage()),
            "--workers" => cfg.workers = value(&mut i).parse().unwrap_or_else(|_| serve_usage()),
            "--queue-depth" => {
                cfg.queue_depth = value(&mut i).parse().unwrap_or_else(|_| serve_usage())
            }
            "--cache" => {
                cfg.cache_capacity = value(&mut i).parse().unwrap_or_else(|_| serve_usage())
            }
            "--cache-bytes" => {
                cfg.cache_max_bytes = value(&mut i).parse().unwrap_or_else(|_| serve_usage())
            }
            "--cache-ttl-ms" => {
                let ms: u64 = value(&mut i).parse().unwrap_or_else(|_| serve_usage());
                cfg.cache_ttl = Some(std::time::Duration::from_millis(ms));
            }
            "--mine-threads" => {
                cfg.mine_threads = value(&mut i).parse().unwrap_or_else(|_| serve_usage())
            }
            "--max-bound" => {
                cfg.max_candidate_bound = value(&mut i).parse().unwrap_or_else(|_| serve_usage())
            }
            "--store-dir" => cfg.store_dir = Some(std::path::PathBuf::from(value(&mut i))),
            "--max-conns" => {
                max_conns = Some(value(&mut i).parse().unwrap_or_else(|_| serve_usage()))
            }
            "--help" | "-h" => serve_usage(),
            other => {
                eprintln!("unknown serve argument {other}");
                serve_usage()
            }
        }
        i += 1;
    }
    if stdio == addr.is_some() {
        eprintln!("serve needs exactly one of --stdio or --addr");
        serve_usage();
    }
    let service = serve::MineService::start(cfg);
    let result = if stdio {
        serve::serve_stdio(&service)
    } else {
        let addr = addr.expect("checked above");
        match std::net::TcpListener::bind(&addr) {
            Ok(listener) => {
                eprintln!(
                    "serving on {}",
                    listener.local_addr().map(|a| a.to_string()).unwrap_or(addr)
                );
                if poll {
                    serve::serve_poll(
                        &service,
                        listener,
                        serve::FrontendConfig::default(),
                        max_conns,
                    )
                    .map(|stats| {
                        eprintln!(
                            "poll frontend: {} served, {} refused, {} quota rejections",
                            stats.connections_served,
                            stats.connections_refused,
                            stats.quota_rejections
                        );
                    })
                } else {
                    serve::serve_tcp(&service, listener, max_conns)
                }
            }
            Err(e) => {
                eprintln!("cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    service.shutdown();
    eprint!("{}", service.metrics().render());
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn loadgen_usage() -> ! {
    eprintln!(
        "usage: fpm-mine loadgen [--seed N] [--rps X] [--duration-ms N]
                [--keys N] [--skew X] [--kernel lcm|eclat|fpgrowth]
                [--query-mix N] [--deadline-ms N]
                [--shards N] [--workers N] [--queue-depth N]
                [--cache N] [--cache-bytes N] [--cache-ttl-ms N]
                [--mine-threads N] [--store-dir DIR] [--out FILE]

  replays a seeded Poisson/Zipf request schedule against an in-process
  mining service and prints a JSON report (p50/p95/p99 latency,
  throughput, hit rate, shed rate). The schedule is a pure function of
  (seed, rps, duration, keys, skew): same seed, same offered traffic.

  --seed          schedule seed (default 0x5eedf00d)
  --rps           offered requests per second (default 200)
  --duration-ms   schedule length (default 500)
  --keys          distinct request keys (default 16)
  --skew          Zipf exponent over keys, 0 = uniform (default 1.0)
  --kernel        kernel every request asks for (default lcm)
  --query-mix     pattern-query variants in the mix, 1..=4: identity,
                  closed, maximal, top-k (default 1 = identity only)
  --deadline-ms   per-request deadline (default: none)
  --out           write the JSON report here instead of stdout
  (service flags as for `fpm-mine serve`; loadgen defaults: 2 shards,
   2 workers, queue-depth 4096)"
    );
    std::process::exit(2);
}

fn run_loadgen(argv: &[String]) -> ExitCode {
    let mut cfg = serve::LoadConfig::default();
    let mut svc_cfg = serve::ServeConfig {
        shards: 2,
        queue_depth: 4096,
        ..serve::ServeConfig::default()
    };
    let mut out: Option<String> = None;
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| loadgen_usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--seed" => cfg.seed = value(&mut i).parse().unwrap_or_else(|_| loadgen_usage()),
            "--rps" => cfg.rps = value(&mut i).parse().unwrap_or_else(|_| loadgen_usage()),
            "--duration-ms" => {
                let ms: u64 = value(&mut i).parse().unwrap_or_else(|_| loadgen_usage());
                cfg.duration = std::time::Duration::from_millis(ms);
            }
            "--keys" => cfg.keys = value(&mut i).parse().unwrap_or_else(|_| loadgen_usage()),
            "--skew" => cfg.skew = value(&mut i).parse().unwrap_or_else(|_| loadgen_usage()),
            "--kernel" => {
                cfg.kernel =
                    serve::Kernel::by_label(&value(&mut i)).unwrap_or_else(|| loadgen_usage())
            }
            "--deadline-ms" => {
                let ms: u64 = value(&mut i).parse().unwrap_or_else(|_| loadgen_usage());
                cfg.deadline = Some(std::time::Duration::from_millis(ms));
            }
            "--query-mix" => {
                cfg.query_mix = value(&mut i).parse().unwrap_or_else(|_| loadgen_usage())
            }
            "--shards" => {
                svc_cfg.shards = value(&mut i).parse().unwrap_or_else(|_| loadgen_usage())
            }
            "--workers" => {
                svc_cfg.workers = value(&mut i).parse().unwrap_or_else(|_| loadgen_usage())
            }
            "--queue-depth" => {
                svc_cfg.queue_depth = value(&mut i).parse().unwrap_or_else(|_| loadgen_usage())
            }
            "--cache" => {
                svc_cfg.cache_capacity = value(&mut i).parse().unwrap_or_else(|_| loadgen_usage())
            }
            "--cache-bytes" => {
                svc_cfg.cache_max_bytes = value(&mut i).parse().unwrap_or_else(|_| loadgen_usage())
            }
            "--cache-ttl-ms" => {
                let ms: u64 = value(&mut i).parse().unwrap_or_else(|_| loadgen_usage());
                svc_cfg.cache_ttl = Some(std::time::Duration::from_millis(ms));
            }
            "--mine-threads" => {
                svc_cfg.mine_threads = value(&mut i).parse().unwrap_or_else(|_| loadgen_usage())
            }
            "--store-dir" => {
                svc_cfg.store_dir = Some(std::path::PathBuf::from(value(&mut i)))
            }
            "--out" => out = Some(value(&mut i)),
            "--help" | "-h" => loadgen_usage(),
            other => {
                eprintln!("unknown loadgen argument {other}");
                loadgen_usage()
            }
        }
        i += 1;
    }
    let service = serve::MineService::start(svc_cfg.clone());
    let report = serve::loadgen::run(&service, &cfg);
    service.shutdown();
    let note = format!(
        "shards={} workers={} queue_depth={} cache={} mine_threads={}",
        svc_cfg.shards,
        svc_cfg.workers,
        svc_cfg.queue_depth,
        svc_cfg.cache_capacity,
        svc_cfg.mine_threads
    );
    let text = report.render(&cfg, &note);
    eprintln!(
        "{} requests: {} completed, {} rejected; p50 {}us p99 {}us, {:.1} rps",
        report.requests,
        report.completed,
        report.rejected,
        report.p50_us,
        report.p99_us,
        report.throughput_rps
    );
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, format!("{text}\n")) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => println!("{text}"),
    }
    ExitCode::SUCCESS
}

fn store_usage() -> ! {
    eprintln!(
        "usage: fpm-mine store build   --dir DIR --dataset ds1..ds4 [--scale smoke|ci|full]
                              [--minsup N] [--kernels lcm,eclat,fpgrowth]
       fpm-mine store inspect --dir DIR [--format text|json]
       fpm-mine store verify  --dir DIR
       fpm-mine store append  --dir DIR --name STEM (--tx \"1 2 3\")... [--file FILE.dat]

  build    generates the dataset, prepares the remapped DB, bit-matrix and
           FP-tree at --minsup (default: the scaled Table 6 support), mines
           each kernel in --kernels (default lcm) and writes the artifact
           atomically as DIR/named-<ds>-<scale>.fpa — `serve --store-dir DIR`
           then answers those requests from the store without re-mining
  inspect  prints each artifact's identity, generation and cached results,
           each result entry tagged with its pattern query and generation;
           --format json emits one JSON object per artifact for scripting
  verify   decodes and deep-verifies every artifact; exits 1 on any damage
  append   appends transactions (space-separated u32 items, from --tx
           and/or a FIMI --file), bumps the generation — invalidating the
           cached results — and rewrites the artifact atomically"
    );
    std::process::exit(2);
}

/// Flag parser shared by the `store` subcommands.
struct StoreArgs {
    dir: Option<String>,
    name: Option<String>,
    dataset: Option<Dataset>,
    scale: Scale,
    minsup: Option<u64>,
    kernels: Vec<String>,
    txs: Vec<Vec<fpm::Item>>,
    file: Option<String>,
    format: String,
}

fn parse_store_args(argv: &[String]) -> StoreArgs {
    let mut a = StoreArgs {
        dir: None,
        name: None,
        dataset: None,
        scale: Scale::Smoke,
        minsup: None,
        kernels: vec!["lcm".into()],
        txs: Vec::new(),
        file: None,
        format: "text".into(),
    };
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| store_usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--dir" => a.dir = Some(value(&mut i)),
            "--name" => a.name = Some(value(&mut i)),
            "--dataset" => {
                a.dataset = Some(Dataset::by_label(&value(&mut i)).unwrap_or_else(|| store_usage()))
            }
            "--scale" => a.scale = Scale::by_label(&value(&mut i)).unwrap_or_else(|| store_usage()),
            "--minsup" => a.minsup = value(&mut i).parse().ok(),
            "--kernels" => {
                a.kernels = value(&mut i).split(',').map(str::to_string).collect()
            }
            "--tx" => {
                let items: Option<Vec<fpm::Item>> = value(&mut i)
                    .split_whitespace()
                    .map(|w| w.parse().ok())
                    .collect();
                a.txs.push(items.unwrap_or_else(|| store_usage()));
            }
            "--file" => a.file = Some(value(&mut i)),
            "--format" => {
                a.format = value(&mut i);
                if a.format != "text" && a.format != "json" {
                    eprintln!("--format must be text or json");
                    store_usage();
                }
            }
            "--help" | "-h" => store_usage(),
            other => {
                eprintln!("unknown store argument {other}");
                store_usage()
            }
        }
        i += 1;
    }
    a
}

fn store_build(a: &StoreArgs) -> ExitCode {
    let (Some(dir), Some(ds)) = (&a.dir, a.dataset) else {
        store_usage()
    };
    let db = ds.generate(a.scale);
    let minsup = a.minsup.unwrap_or_else(|| ds.support(a.scale));
    let spec = store::SpecMeta::named(&ds.label().to_ascii_lowercase(), a.scale.label());
    let mut artifact = store::Artifact::build(spec, &db, minsup);
    for label in &a.kernels {
        let Some(kernel) = fpm::Kernel::by_label(label) else {
            eprintln!("unknown kernel {label}");
            return ExitCode::from(2);
        };
        let mut sink = CollectSink::default();
        exec::MinePlan::kernel(kernel, minsup).execute(&db, &mut sink);
        eprintln!("{label}: {} patterns at minsup {minsup}", sink.patterns.len());
        artifact.push_result(kernel.code(), minsup, fpm::QueryKey::default(), sink.patterns);
    }
    let dir = std::path::Path::new(dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let path = artifact.path_in(dir);
    match artifact.store(&path) {
        Ok(()) => {
            eprintln!("wrote {}", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

/// Artifact paths under `--dir`, narrowed to `--name` when given.
fn store_paths(a: &StoreArgs) -> Vec<std::path::PathBuf> {
    let Some(dir) = &a.dir else { store_usage() };
    let paths = store::scan(std::path::Path::new(dir)).unwrap_or_else(|e| {
        eprintln!("cannot scan {dir}: {e}");
        std::process::exit(1);
    });
    match &a.name {
        Some(stem) => paths
            .into_iter()
            .filter(|p| p.file_stem().and_then(|s| s.to_str()) == Some(stem))
            .collect(),
        None => paths,
    }
}

/// Renders a result entry's query tag for inspect output. A tag whose
/// class code a newer writer minted (undecodable here) still prints,
/// as `unknown`.
fn query_label(key: fpm::QueryKey) -> String {
    fpm::PatternQuery::from_key(key)
        .map(|q| q.label())
        .unwrap_or_else(|| "unknown".into())
}

/// The query tag as a JSON object (`class`, `top_k`, `rules`), mirroring
/// the serve request fields so inspect output can be replayed.
fn query_json(key: fpm::QueryKey) -> String {
    let Some(q) = fpm::PatternQuery::from_key(key) else {
        return format!("{{\"unknown_class\":{}}}", key.class);
    };
    let top_k = q.top_k.map_or("null".into(), |k| k.to_string());
    let rules = q.rules.map_or("null".into(), |r| {
        format!(
            "{{\"min_confidence\":{},\"min_lift\":{}}}",
            r.min_confidence, r.min_lift
        )
    });
    format!(
        "{{\"class\":\"{}\",\"top_k\":{top_k},\"rules\":{rules}}}",
        q.class.name()
    )
}

fn store_inspect(a: &StoreArgs) -> ExitCode {
    let paths = store_paths(a);
    if paths.is_empty() {
        eprintln!("no artifacts found");
        return ExitCode::FAILURE;
    }
    let kernel_label = |code: u8| {
        fpm::Kernel::ALL
            .iter()
            .find(|k| k.code() == code)
            .map(|k| k.label())
            .unwrap_or("?")
    };
    for path in paths {
        let art = match store::Artifact::load(&path) {
            Ok(art) => art,
            Err(e) => {
                if a.format == "json" {
                    println!(
                        "{{\"path\":{:?},\"error\":\"{e}\"}}",
                        path.display().to_string()
                    );
                } else {
                    println!("{}: UNREADABLE ({e})", path.display());
                }
                continue;
            }
        };
        if a.format == "json" {
            let results: Vec<String> = art
                .results
                .iter()
                .map(|entry| {
                    format!(
                        "{{\"kernel\":\"{}\",\"min_support\":{},\"query\":{},\
                         \"generation\":{},\"live\":{},\"patterns\":{}}}",
                        kernel_label(entry.kernel),
                        entry.min_support,
                        query_json(entry.query),
                        entry.generation,
                        entry.generation == art.generation,
                        entry.patterns.len()
                    )
                })
                .collect();
            println!(
                "{{\"path\":{:?},\"kind\":\"{}\",\"dataset\":{:?},\"scale\":{:?},\
                 \"generation\":{},\"fingerprint\":\"{:016x}\",\"raw_rows\":{},\
                 \"frequent_items\":{},\"prepared_minsup\":{},\"results\":[{}]}}",
                path.display().to_string(),
                art.spec.kind.label(),
                art.spec.dataset,
                art.spec.scale,
                art.generation,
                art.fingerprint,
                art.raw.len(),
                art.ranked.to_orig.len(),
                art.prepared_minsup,
                results.join(",")
            );
            continue;
        }
        println!(
            "{}: {} {}{}{} gen {} fp {:016x} | {} raw rows, {} frequent items, \
             prepared minsup {} | {} result(s), {} live",
            path.display(),
            art.spec.kind.label(),
            art.spec.dataset,
            if art.spec.scale.is_empty() { "" } else { "-" },
            art.spec.scale,
            art.generation,
            art.fingerprint,
            art.raw.len(),
            art.ranked.to_orig.len(),
            art.prepared_minsup,
            art.results.len(),
            art.live_results().count(),
        );
        for entry in &art.results {
            println!(
                "  {} minsup {} query {} gen {}: {} patterns{}",
                kernel_label(entry.kernel),
                entry.min_support,
                query_label(entry.query),
                entry.generation,
                entry.patterns.len(),
                if entry.generation == art.generation {
                    ""
                } else {
                    " (stale)"
                }
            );
        }
    }
    ExitCode::SUCCESS
}

fn store_verify(a: &StoreArgs) -> ExitCode {
    let paths = store_paths(a);
    if paths.is_empty() {
        eprintln!("no artifacts found");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in paths {
        match store::Artifact::load(&path) {
            Ok(art) => match art.verify_deep() {
                Ok(()) => println!("{}: ok", path.display()),
                Err(e) => {
                    println!("{}: DEEP-VERIFY FAILED ({e})", path.display());
                    failed = true;
                }
            },
            Err(e) => {
                println!("{}: CORRUPT ({e})", path.display());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn store_append(a: &StoreArgs) -> ExitCode {
    if a.name.is_none() {
        store_usage();
    }
    let mut rows = a.txs.clone();
    if let Some(path) = &a.file {
        match fpm::io::read_dat_file(path) {
            Ok(db) => rows.extend(db.transactions().iter().cloned()),
            Err(e) => {
                eprintln!("error reading {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if rows.is_empty() {
        eprintln!("append needs at least one --tx or a non-empty --file");
        return ExitCode::from(2);
    }
    let paths = store_paths(a);
    let [path] = paths.as_slice() else {
        eprintln!("--name must match exactly one artifact");
        return ExitCode::FAILURE;
    };
    let mut artifact = match store::Artifact::load(path) {
        Ok(art) => art,
        Err(e) => {
            eprintln!("{}: cannot load ({e})", path.display());
            return ExitCode::FAILURE;
        }
    };
    let report = store::append(&mut artifact, &rows);
    if let Err(e) = artifact.store(path) {
        eprintln!("cannot rewrite {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "appended {} row(s) to {} ({}), now generation {}; {} cached result(s) invalidated",
        report.appended_rows,
        path.display(),
        if report.incremental {
            "incremental patch"
        } else {
            "order changed, prepared sections rebuilt"
        },
        report.generation,
        report.invalidated_results,
    );
    ExitCode::SUCCESS
}

fn run_store(argv: &[String]) -> ExitCode {
    let Some(sub) = argv.first() else { store_usage() };
    let a = parse_store_args(&argv[1..]);
    match sub.as_str() {
        "build" => store_build(&a),
        "inspect" => store_inspect(&a),
        "verify" => store_verify(&a),
        "append" => store_append(&a),
        _ => store_usage(),
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("serve") {
        return run_serve(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("loadgen") {
        return run_loadgen(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("store") {
        return run_store(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("rules") {
        return run_rules(&raw[1..]);
    }
    let args = parse_args();
    let (db, minsup) = load(&args);
    eprintln!(
        "database: {} transactions, {} items, mean length {:.1}; minsup {}",
        db.len(),
        db.n_items(),
        db.mean_len(),
        minsup
    );

    if args.profile {
        let p = fpm::metrics::profile(&db, minsup);
        eprintln!(
            "profile: density {:.5}, scatter {:.3}, mean ranked length {:.1}, {} frequent items",
            p.density, p.scatter, p.mean_len, p.n_items
        );
    }

    let variant = if args.advise {
        let v = advised_variant(&db, minsup, &args.kernel);
        eprintln!("advisor picked variant {v:?} for kernel {}", args.kernel);
        v
    } else {
        args.variant.clone()
    };

    let query = fpm::PatternQuery {
        class: args.kind,
        top_k: args.top_k,
        rules: None,
    };
    let start = Instant::now();
    let result = if args.count_only && query.is_all() {
        let mut sink = CountSink::default();
        mine_with(&args.kernel, &variant, &db, minsup, args.threads, query, &mut sink).map(|()| {
            eprintln!(
                "{} frequent itemsets in {:.3}s",
                sink.count,
                start.elapsed().as_secs_f64()
            );
        })
    } else {
        let mut sink = CollectSink::default();
        mine_with(&args.kernel, &variant, &db, minsup, args.threads, query, &mut sink).map(|()| {
            // A top-k answer is *ordered* (support desc, serial rank
            // asc) — canonicalizing would destroy the ranking, so only
            // unranked answers are canonicalized for stable output.
            let patterns = if query.top_k.is_some() {
                sink.patterns
            } else {
                fpm::types::canonicalize(sink.patterns)
            };
            eprintln!(
                "{} {} itemsets in {:.3}s",
                patterns.len(),
                query.label(),
                start.elapsed().as_secs_f64()
            );
            if args.count_only {
                return;
            }
            match &args.out {
                Some(path) => {
                    let f = std::fs::File::create(path).expect("create output file");
                    fpm::io::write_patterns(f, &patterns).expect("write patterns");
                }
                None => {
                    let stdout = std::io::stdout();
                    let mut lock = stdout.lock();
                    fpm::io::write_patterns(&mut lock, &patterns).expect("write patterns");
                    lock.flush().ok();
                }
            }
        })
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
