//! `fpm-mine` — command-line frequent itemset miner.
//!
//! ```text
//! fpm-mine --input db.dat --minsup 100 --kernel lcm --variant all
//! fpm-mine --dataset ds1 --scale smoke --kernel eclat --variant simd --out patterns.txt
//! fpm-mine --dataset ds3 --scale ci --kernel fpgrowth --variant base --count-only
//! fpm-mine --input db.dat --minsup 50 --kernel lcm --advise
//! fpm-mine serve --stdio
//! fpm-mine serve --addr 127.0.0.1:7878 --workers 4 --mine-threads 4
//! ```
//!
//! The `serve` subcommand runs the `fpm-serve` mining service: one JSON
//! request per input line, one JSON response per output line (see the
//! README's `serve` quickstart for the request shape).
//!
//! Kernels: `lcm` (default), `eclat`, `fpgrowth`, `apriori`, `hmine`.
//! Variants: each kernel's Figure 8 columns (`base`, `lex`, …, `all`);
//! `--advise` lets the input-profile advisor pick the pattern set.
//! `--threads N` mines on the shared work-stealing runtime (`fpm-par`);
//! `0` auto-detects the host parallelism. Parallel output is identical
//! to serial for every kernel × variant.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use fpm::{CollectSink, CountSink, PatternSink, TransactionDb};
use quest::{Dataset, Scale};
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    input: Option<String>,
    dataset: Option<Dataset>,
    scale: Scale,
    minsup: Option<u64>,
    kernel: String,
    variant: String,
    out: Option<String>,
    count_only: bool,
    advise: bool,
    profile: bool,
    kind: fpm::MineKind,
    threads: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: fpm-mine (--input FILE.dat | --dataset ds1..ds4 [--scale smoke|ci|full])
                [--minsup N] [--kernel lcm|eclat|fpgrowth|apriori|hmine]
                [--variant base|lex|reorg|pref|tile|simd|all] [--advise]
                [--kind all|closed|maximal] [--out FILE] [--count-only] [--profile]
                [--threads N]

  --minsup defaults to the dataset's Table 6 support (required for --input)
  --advise lets the input profile choose the pattern set (overrides --variant)
  --profile prints the input profile and the advisor's recommendation
  --threads mines on the work-stealing runtime (0 = auto; lcm/eclat/fpgrowth)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args {
        input: None,
        dataset: None,
        scale: Scale::Ci,
        minsup: None,
        kernel: "lcm".into(),
        variant: "all".into(),
        out: None,
        count_only: false,
        advise: false,
        profile: false,
        kind: fpm::MineKind::All,
        threads: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--input" => a.input = Some(value(&mut i)),
            "--dataset" => {
                a.dataset = Some(Dataset::by_label(&value(&mut i)).unwrap_or_else(|| usage()))
            }
            "--scale" => a.scale = Scale::by_label(&value(&mut i)).unwrap_or_else(|| usage()),
            "--minsup" => a.minsup = value(&mut i).parse().ok(),
            "--kernel" => a.kernel = value(&mut i),
            "--variant" => a.variant = value(&mut i),
            "--out" => a.out = Some(value(&mut i)),
            "--count-only" => a.count_only = true,
            "--kind" => {
                a.kind = match value(&mut i).as_str() {
                    "all" => fpm::MineKind::All,
                    "closed" => fpm::MineKind::Closed,
                    "maximal" => fpm::MineKind::Maximal,
                    _ => usage(),
                }
            }
            "--threads" => a.threads = value(&mut i).parse().ok().or_else(|| usage()),
            "--advise" => a.advise = true,
            "--profile" => a.profile = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other}");
                usage()
            }
        }
        i += 1;
    }
    if a.input.is_none() && a.dataset.is_none() {
        usage();
    }
    a
}

fn load(a: &Args) -> (TransactionDb, u64) {
    if let Some(path) = &a.input {
        let db = fpm::io::read_dat_file(path).unwrap_or_else(|e| {
            eprintln!("error reading {path}: {e}");
            std::process::exit(1);
        });
        let minsup = a.minsup.unwrap_or_else(|| {
            eprintln!("--minsup is required with --input");
            std::process::exit(2);
        });
        (db, minsup)
    } else {
        let ds = a.dataset.expect("checked in parse_args");
        let db = ds.generate(a.scale);
        (db, a.minsup.unwrap_or_else(|| ds.support(a.scale)))
    }
}

fn advised_variant(db: &TransactionDb, minsup: u64, kernel: &str) -> String {
    use also::catalog::Kernel;
    let k = match kernel {
        "lcm" => Kernel::Lcm,
        "eclat" => Kernel::Eclat,
        "fpgrowth" => Kernel::FpGrowth,
        _ => return "all".into(),
    };
    let profile = fpm::metrics::profile(db, minsup);
    let picks = also::advisor::advise(&profile, k, &also::advisor::AdvisorConfig::default());
    // map the advised pattern set onto the closest named variant
    use also::catalog::Pattern::*;
    let has = |p| picks.contains(&p);
    match k {
        Kernel::Lcm => {
            if has(LexicographicOrdering) && has(Tiling) {
                "all".into()
            } else if has(Tiling) {
                "tile".into()
            } else if has(LexicographicOrdering) {
                "lex".into()
            } else {
                "reorg".into()
            }
        }
        Kernel::Eclat => {
            if has(LexicographicOrdering) {
                "all".into()
            } else {
                "simd".into()
            }
        }
        Kernel::FpGrowth => {
            if has(LexicographicOrdering) && has(SoftwarePrefetch) {
                "all".into()
            } else if has(SoftwarePrefetch) {
                "pref".into()
            } else {
                "reorg".into()
            }
        }
    }
}

fn mine_with<S: PatternSink>(
    kernel: &str,
    variant: &str,
    db: &TransactionDb,
    minsup: u64,
    threads: Option<usize>,
    sink: &mut S,
) -> Result<(), String> {
    let mut plan = exec::MinePlan::by_label(kernel, minsup)?.variant(variant)?;
    if let Some(n) = threads {
        if !plan.config().supports_parallel() {
            return Err(format!(
                "--threads is not supported for {}",
                plan.config().label()
            ));
        }
        plan = plan.threads(n);
    }
    plan.execute(db, sink);
    Ok(())
}

fn serve_usage() -> ! {
    eprintln!(
        "usage: fpm-mine serve (--stdio | --addr HOST:PORT)
                [--workers N] [--queue-depth N] [--cache N]
                [--mine-threads N] [--max-bound X] [--max-conns N]

  one JSON request per line in, one JSON response per line out, e.g.
  {{\"dataset\":{{\"name\":\"ds1\",\"scale\":\"smoke\"}},\"kernel\":\"lcm\",
    \"min_support\":30,\"deadline_ms\":5000,\"max_patterns\":1000}}

  --workers       worker threads draining the job queue (default 2)
  --queue-depth   queued jobs beyond which submissions reject (default 64)
  --cache         result-cache entries, 0 disables (default 32)
  --mine-threads  threads per mining run, >1 uses the par runtime (default serial)
  --max-bound     admission ceiling on the candidate bound (default unlimited)
  --max-conns     with --addr: exit after N connections (default: serve forever)"
    );
    std::process::exit(2);
}

fn run_serve(argv: &[String]) -> ExitCode {
    let mut cfg = serve::ServeConfig::default();
    let mut addr: Option<String> = None;
    let mut stdio = false;
    let mut max_conns: Option<usize> = None;
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| serve_usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--stdio" => stdio = true,
            "--addr" => addr = Some(value(&mut i)),
            "--workers" => cfg.workers = value(&mut i).parse().unwrap_or_else(|_| serve_usage()),
            "--queue-depth" => {
                cfg.queue_depth = value(&mut i).parse().unwrap_or_else(|_| serve_usage())
            }
            "--cache" => {
                cfg.cache_capacity = value(&mut i).parse().unwrap_or_else(|_| serve_usage())
            }
            "--mine-threads" => {
                cfg.mine_threads = value(&mut i).parse().unwrap_or_else(|_| serve_usage())
            }
            "--max-bound" => {
                cfg.max_candidate_bound = value(&mut i).parse().unwrap_or_else(|_| serve_usage())
            }
            "--max-conns" => {
                max_conns = Some(value(&mut i).parse().unwrap_or_else(|_| serve_usage()))
            }
            "--help" | "-h" => serve_usage(),
            other => {
                eprintln!("unknown serve argument {other}");
                serve_usage()
            }
        }
        i += 1;
    }
    if stdio == addr.is_some() {
        eprintln!("serve needs exactly one of --stdio or --addr");
        serve_usage();
    }
    let service = serve::MineService::start(cfg);
    let result = if stdio {
        serve::serve_stdio(&service)
    } else {
        let addr = addr.expect("checked above");
        match std::net::TcpListener::bind(&addr) {
            Ok(listener) => {
                eprintln!(
                    "serving on {}",
                    listener.local_addr().map(|a| a.to_string()).unwrap_or(addr)
                );
                serve::serve_tcp(&service, listener, max_conns)
            }
            Err(e) => {
                eprintln!("cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    service.shutdown();
    eprint!("{}", service.metrics().render());
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("serve") {
        return run_serve(&raw[1..]);
    }
    let args = parse_args();
    let (db, minsup) = load(&args);
    eprintln!(
        "database: {} transactions, {} items, mean length {:.1}; minsup {}",
        db.len(),
        db.n_items(),
        db.mean_len(),
        minsup
    );

    if args.profile {
        let p = fpm::metrics::profile(&db, minsup);
        eprintln!(
            "profile: density {:.5}, scatter {:.3}, mean ranked length {:.1}, {} frequent items",
            p.density, p.scatter, p.mean_len, p.n_items
        );
    }

    let variant = if args.advise {
        let v = advised_variant(&db, minsup, &args.kernel);
        eprintln!("advisor picked variant {v:?} for kernel {}", args.kernel);
        v
    } else {
        args.variant.clone()
    };

    let start = Instant::now();
    let result = if args.count_only && matches!(args.kind, fpm::MineKind::All) {
        let mut sink = CountSink::default();
        mine_with(&args.kernel, &variant, &db, minsup, args.threads, &mut sink).map(|()| {
            eprintln!(
                "{} frequent itemsets in {:.3}s",
                sink.count,
                start.elapsed().as_secs_f64()
            );
        })
    } else {
        let mut sink = CollectSink::default();
        mine_with(&args.kernel, &variant, &db, minsup, args.threads, &mut sink).map(|()| {
            let filtered = match args.kind {
                fpm::MineKind::All => sink.patterns,
                fpm::MineKind::Closed => fpm::postfilter::closed(sink.patterns),
                fpm::MineKind::Maximal => fpm::postfilter::maximal(sink.patterns),
            };
            let patterns = fpm::types::canonicalize(filtered);
            eprintln!(
                "{} {} itemsets in {:.3}s",
                patterns.len(),
                args.kind.name(),
                start.elapsed().as_secs_f64()
            );
            if args.count_only {
                return;
            }
            match &args.out {
                Some(path) => {
                    let f = std::fs::File::create(path).expect("create output file");
                    fpm::io::write_patterns(f, &patterns).expect("write patterns");
                }
                None => {
                    let stdout = std::io::stdout();
                    let mut lock = stdout.lock();
                    fpm::io::write_patterns(&mut lock, &patterns).expect("write patterns");
                    lock.flush().ok();
                }
            }
        })
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
