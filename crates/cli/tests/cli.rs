//! End-to-end tests of the `fpm-mine` binary.

use std::io::Write;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fpm-mine"))
}

fn write_dat(content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("fpm_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}.dat", content.len()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

#[test]
fn mines_a_dat_file() {
    let path = write_dat("1 2 3\n1 2\n1 2 3\n2 3\n");
    let out = bin()
        .args(["--input", path.to_str().unwrap(), "--minsup", "2"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("1 2 (3)"), "{stdout}");
    assert!(stdout.contains("2 3 (3)"), "{stdout}");
    assert_eq!(stdout.lines().count(), 7);
}

#[test]
fn kernels_agree_via_cli() {
    let path = write_dat("1 2 3\n1 2\n1 2 3\n2 3\n1 3\n");
    let mut outputs = Vec::new();
    for kernel in ["lcm", "eclat", "fpgrowth", "apriori"] {
        let mut cmd = bin();
        cmd.args(["--input", path.to_str().unwrap(), "--minsup", "2", "--kernel", kernel]);
        if kernel != "apriori" {
            cmd.args(["--variant", "all"]);
        }
        let out = cmd.output().unwrap();
        assert!(out.status.success(), "{kernel}");
        outputs.push(String::from_utf8(out.stdout).unwrap());
    }
    for o in &outputs[1..] {
        assert_eq!(o, &outputs[0]);
    }
}

#[test]
fn dataset_generation_and_count_only() {
    let out = bin()
        .args([
            "--dataset", "ds1", "--scale", "smoke", "--kernel", "eclat", "--variant", "simd",
            "--count-only",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("frequent itemsets"), "{stderr}");
}

#[test]
fn advise_mode_picks_a_variant() {
    let out = bin()
        .args([
            "--dataset", "ds4", "--scale", "smoke", "--kernel", "lcm", "--advise", "--count-only",
            "--profile",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("advisor picked"), "{stderr}");
    assert!(stderr.contains("profile:"), "{stderr}");
}

#[test]
fn threads_flag_matches_serial_output() {
    let path = write_dat("1 2 3\n1 2\n1 2 3\n2 3\n1 3\n");
    for kernel in ["lcm", "eclat", "fpgrowth"] {
        let serial = bin()
            .args(["--input", path.to_str().unwrap(), "--minsup", "2", "--kernel", kernel])
            .output()
            .unwrap();
        assert!(serial.status.success(), "{kernel}");
        for threads in ["0", "1", "3"] {
            let parallel = bin()
                .args([
                    "--input", path.to_str().unwrap(), "--minsup", "2", "--kernel", kernel,
                    "--threads", threads,
                ])
                .output()
                .unwrap();
            assert!(parallel.status.success(), "{kernel} --threads {threads}");
            assert_eq!(
                String::from_utf8_lossy(&parallel.stdout),
                String::from_utf8_lossy(&serial.stdout),
                "{kernel} --threads {threads}"
            );
        }
    }
}

#[test]
fn threads_flag_rejected_for_level_wise_kernels() {
    let path = write_dat("1 2\n1 2\n");
    let out = bin()
        .args([
            "--input", path.to_str().unwrap(), "--minsup", "1", "--kernel", "apriori",
            "--threads", "2",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("not supported"));
}

#[test]
fn bad_arguments_fail_cleanly() {
    let out = bin().args(["--kernel", "lcm"]).output().unwrap(); // no input
    assert!(!out.status.success());
    let path = write_dat("1 2\n");
    let out = bin()
        .args(["--input", path.to_str().unwrap(), "--minsup", "1", "--variant", "nope"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no variant"));
}

#[test]
fn closed_and_maximal_kinds() {
    let path = write_dat("1 2 3\n1 2\n1 2 3\n2 3\n");
    let closed = bin()
        .args(["--input", path.to_str().unwrap(), "--minsup", "2", "--kind", "closed"])
        .output()
        .unwrap();
    assert!(closed.status.success());
    let closed_out = String::from_utf8(closed.stdout).unwrap();
    // {1} (sup 3) is absorbed by {1,2} (sup 3): not closed
    assert!(!closed_out.lines().any(|l| l == "1 (3)"), "{closed_out}");
    assert!(closed_out.contains("1 2 (3)"));
    let maximal = bin()
        .args(["--input", path.to_str().unwrap(), "--minsup", "2", "--kind", "maximal"])
        .output()
        .unwrap();
    let max_out = String::from_utf8(maximal.stdout).unwrap();
    assert_eq!(max_out.trim(), "1 2 3 (2)");
}

#[test]
fn out_file_roundtrip() {
    let path = write_dat("1 2\n1 2\n3\n");
    let out_path = std::env::temp_dir().join("fpm_cli_tests/out.txt");
    let out = bin()
        .args([
            "--input", path.to_str().unwrap(), "--minsup", "2",
            "--out", out_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let written = std::fs::read_to_string(&out_path).unwrap();
    assert_eq!(written, "1 (2)\n1 2 (2)\n2 (2)\n");
}
