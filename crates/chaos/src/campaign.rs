//! The differential-oracle campaign: seeded fault plans swept through
//! the executor and the service, every injected failure checked against
//! the prefix-consistency contract.
//!
//! One campaign **case** is a pure function of its seed: the seed picks
//! a `(fault site, kernel, thread count)` combination (the first 63
//! seeds enumerate the full 7 × 3 × 3 matrix; later seeds re-mix) and
//! the [`FaultPlan`] derived from the same seed schedules *when* the
//! site fires. [`run_case`] then drives two phases on the DS1-smoke
//! workload —
//!
//! 1. **exec**: a [`MinePlan`] through the work-stealing runtime (even
//!    at one thread, so the worker-panic site is always armed);
//! 2. **serve**: a cold + warm request pair against a fresh two-shard
//!    [`MineService`], exercising the cache-corruption,
//!    admission-flap, and shard-stall sites — and, for the
//!    artifact-corruption site, warm-started from a pre-built store
//!    whose bytes the plan damages at load;
//!
//! — and asserts the three invariants after each (DESIGN.md §12):
//!
//! * (a) every emitted byte sequence is a line-aligned prefix of the
//!   *committed* serial golden (cross-checked against `tests/goldens/`
//!   once per process, so a stale corpus fails loudly);
//! * (b) the outcome taxonomy names the true first cause — an injected
//!   panic surfaces as `TaskPanicked`/`Failed`, an injected trip as
//!   `Cancelled`, a flapped admission as `Rejected`, and a plan that
//!   never fired must leave a clean, complete run;
//! * (c) the service's counters stay arithmetically consistent
//!   (jobs in = out by outcome; cache probes = hits + misses;
//!   integrity failures never exceed misses).
//!
//! Plans fire against a **global** slot ([`fpm::faults::install`]), so
//! anything driving a case must hold [`lock`] for the duration.

use crate::goldens::{self, GoldenCase};
use exec::MinePlan;
use fpm::control::{MineControl, StopCause};
use fpm::faults::{install, mix, FaultPlan, FaultSite};
use fpm::types::MineKind;
use fpm::{ItemsetCount, Kernel, PatternQuery, PatternSink, RecordSink, TransactionDb};
use par::ParConfig;
use quest::{Dataset, Scale};
use serve::{DatasetSpec, MineRequest, MineResponse, MineService, Outcome, ServeConfig};
use std::sync::{Mutex, OnceLock};

/// Seeds the checked-in campaign sweeps (`tests/campaign.rs`).
pub const CAMPAIGN_SEEDS: u64 = 96;

/// Thread counts the matrix covers.
pub const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Query variants the extended matrix covers. Index 0 is the identity
/// query: the base 63-seed `site × kernel × threads` sweep pins it, so
/// those cases are exactly the pre-query campaign; remix seeds (≥ 63)
/// draw from the full query-extended matrix and so also drive the
/// postfilter path (closed class) and the top-k path under every fault
/// site.
pub fn campaign_queries() -> [PatternQuery; 3] {
    [
        PatternQuery::all(),
        PatternQuery::class(MineKind::Closed),
        PatternQuery::all().top_k(16),
    ]
}

/// The campaign workload: DS1 at smoke scale.
pub const DATASET: Dataset = Dataset::Ds1;
/// The campaign workload scale.
pub const SCALE: Scale = Scale::Smoke;

/// One campaign case, fully derived from its seed.
#[derive(Debug, Clone, Copy)]
pub struct Case {
    /// The driving seed (`FPM_CHAOS_SEED` reproduces exactly this case).
    pub seed: u64,
    /// Which injection site the seed arms.
    pub site: FaultSite,
    /// Which kernel mines.
    pub kernel: Kernel,
    /// Worker threads for the run.
    pub threads: usize,
    /// The pattern query both phases run under (identity for the base
    /// matrix; remix seeds sweep [`campaign_queries`]).
    pub query: PatternQuery,
}

impl Case {
    /// Derives the case for `seed`. Seeds `0..63` enumerate the full
    /// `site × kernel × threads` matrix in order; higher seeds remix
    /// through [`mix`] so every `u64` is a valid case.
    pub fn from_seed(seed: u64) -> Case {
        let queries = campaign_queries();
        let nsites = FaultSite::ALL.len() as u64;
        let nkernels = Kernel::ALL.len() as u64;
        let nthreads = THREAD_COUNTS.len() as u64;
        let combos = nsites * nkernels * nthreads;
        let (combo, query) = if seed < combos {
            (seed, queries[0])
        } else {
            let m = mix(seed);
            (m % combos, queries[((m / combos) % queries.len() as u64) as usize])
        };
        Case {
            seed,
            site: FaultSite::ALL[(combo % nsites) as usize],
            kernel: Kernel::ALL[((combo / nsites) % nkernels) as usize],
            threads: THREAD_COUNTS[((combo / (nsites * nkernels)) % nthreads) as usize],
            query,
        }
    }

    /// The case in one line, leading with the reproduction command.
    pub fn label(&self) -> String {
        format!(
            "FPM_CHAOS_SEED={} [site={} kernel={} threads={} query={}]",
            self.seed,
            self.site.label(),
            self.kernel.label(),
            self.threads,
            self.query.label()
        )
    }
}

/// The campaign serialization lock: the fault-plan slot is process
/// global, so every test that installs plans must hold this for the
/// whole case.
pub fn lock() -> &'static Mutex<()> {
    static LOCK: Mutex<()> = Mutex::new(());
    &LOCK
}

/// The campaign workload, generated once per process.
pub fn dataset() -> &'static TransactionDb {
    static DB: OnceLock<TransactionDb> = OnceLock::new();
    DB.get_or_init(|| DATASET.generate(SCALE))
}

/// The serial golden for `kernel` on the campaign workload — computed
/// in-process once, and cross-checked against the *committed* corpus
/// digest and prefix file so invariant (a) is anchored to
/// `tests/goldens/`, not to whatever the current build happens to emit.
pub fn golden(kernel: Kernel) -> &'static [u8] {
    static GOLDENS: OnceLock<[Vec<u8>; 3]> = OnceLock::new();
    let all = GOLDENS.get_or_init(|| {
        let digests = goldens::load_digests();
        Kernel::ALL.map(|kernel| {
            let case = GoldenCase::smoke(kernel);
            let bytes = case.serial_bytes();
            let want = digests.get(&case.stem()).unwrap_or_else(|| {
                panic!(
                    "{} missing from digests.txt — run `cargo xtask regen-goldens`",
                    case.stem()
                )
            });
            assert_eq!(
                want.hash,
                goldens::fnv(&bytes),
                "{}: serial output diverges from the committed golden \
                 (regen the corpus if the change is intentional)",
                case.stem()
            );
            assert!(
                bytes.starts_with(&goldens::load_prefix(&case.stem())),
                "{}: committed prefix file is not a prefix of the serial output",
                case.stem()
            );
            bytes
        })
    });
    let idx = Kernel::ALL.iter().position(|k| *k == kernel).expect("known kernel");
    &all[idx]
}

/// The query-adjusted golden: the committed serial golden's pattern
/// list with `query` applied (the pure reference semantics of
/// `PatternQuery::apply`), rendered. For the identity query this is
/// byte-identical to [`golden`] — asserted once per process, which
/// anchors the query references to the committed corpus too.
pub fn query_golden(kernel: Kernel, query: &PatternQuery) -> Vec<u8> {
    static PATTERNS: OnceLock<[Vec<ItemsetCount>; 3]> = OnceLock::new();
    let all = PATTERNS.get_or_init(|| {
        Kernel::ALL.map(|kernel| {
            let mut sink = fpm::CollectSink::default();
            MinePlan::kernel(kernel, goldens::SMOKE_MINSUP).execute(dataset(), &mut sink);
            assert_eq!(
                render(&sink.patterns),
                golden(kernel),
                "{}: collected serial patterns must render the committed golden",
                kernel.label()
            );
            sink.patterns
        })
    });
    let idx = Kernel::ALL.iter().position(|k| *k == kernel).expect("known kernel");
    render(&query.apply(all[idx].clone(), dataset().len() as u64))
}

/// Renders patterns exactly as [`RecordSink`] would, so service
/// responses can be prefix-compared against the byte goldens.
pub fn render(patterns: &[ItemsetCount]) -> Vec<u8> {
    let mut sink = RecordSink::default();
    for p in patterns {
        sink.emit(&p.items, p.support);
    }
    sink.bytes
}

/// Invariant (a): `got` is a line-aligned byte prefix of `want`.
pub fn assert_line_prefix(got: &[u8], want: &[u8], context: &str) {
    assert!(
        want.starts_with(got),
        "{context}: emitted bytes are not a prefix of the serial golden \
         ({} emitted vs {} golden bytes)",
        got.len(),
        want.len()
    );
    assert!(
        got.is_empty() || got.ends_with(b"\n"),
        "{context}: emitted prefix is not line-aligned (ends mid-record)"
    );
}

/// Runs the full case for `seed`: the exec phase, then the serve phase.
/// Callers must hold [`lock`]. Panics (with the reproduction command in
/// the message) on any invariant violation.
pub fn run_case(seed: u64) {
    let case = Case::from_seed(seed);
    exec_phase(&case);
    serve_phase(&case);
}

/// Phase 1: the fault plan against `MinePlan::execute_controlled` on
/// the work-stealing runtime.
fn exec_phase(case: &Case) {
    // For a non-identity query, invariant (a)'s reference is the query
    // answer over the committed golden: the executor's query path emits
    // the applied result in serial order (or an empty prefix when the
    // collection tripped), so prefix-of-the-query-golden is exactly the
    // contract.
    let want = query_golden(case.kernel, &case.query);
    let minsup = goldens::SMOKE_MINSUP;
    let label = format!("{} exec", case.label());

    // A fresh plan per phase, so `fired()` reflects this phase alone.
    let guard = install(FaultPlan::for_site(case.site, case.seed));
    let control = MineControl::unlimited();
    let mut sink = RecordSink::default();
    // `par_config` (not `threads`) so one thread still schedules through
    // the runtime — the worker-panic site must be armed at every count.
    let summary = MinePlan::kernel(case.kernel, minsup)
        .par_config(ParConfig::with_threads(case.threads))
        .query(case.query)
        .execute_controlled(dataset(), &control, &mut sink);
    let fired = guard.plan().fired();
    drop(guard);

    // Invariant (a) holds unconditionally.
    assert_line_prefix(&sink.bytes, &want, &label);

    // Invariant (b): the summary names the true first cause.
    match (case.site, fired > 0) {
        (FaultSite::WorkerPanic, true) => {
            assert_eq!(
                summary.stop_cause,
                Some(StopCause::TaskPanicked),
                "{label}: an injected task panic must surface as TaskPanicked"
            );
            assert!(!summary.complete, "{label}: a panicked run cannot be complete");
        }
        (FaultSite::SpuriousTrip, true) => {
            assert_eq!(
                summary.stop_cause,
                Some(StopCause::Cancelled),
                "{label}: an injected trip is recorded as the cancellation it is"
            );
            assert!(!summary.complete, "{label}: a tripped run cannot be complete");
        }
        // Latency must never change behavior, and a plan that never
        // fired (or whose site the executor never crosses) must leave a
        // clean, complete, byte-identical run.
        (FaultSite::StealLatency, _) | (_, false) => {
            assert_eq!(summary.stop_cause, None, "{label}: clean run must not trip");
            assert!(summary.complete, "{label}: clean run must complete");
            assert_eq!(
                sink.bytes, want,
                "{label}: clean run must emit the full serial golden"
            );
        }
        (
            FaultSite::CacheCorrupt
            | FaultSite::AdmissionFlap
            | FaultSite::ShardStall
            | FaultSite::ArtifactCorrupt,
            true,
        ) => {
            panic!("{label}: the executor never crosses the {} site", case.site.label())
        }
    }
}

/// Phase 2: the fault plan against a fresh [`MineService`] — a cold
/// request (mines and caches) followed by a warm one (cache probe).
/// For the artifact-corruption site the service boots against a
/// pre-built single-artifact store whose bytes the armed plan damages
/// at load time.
fn serve_phase(case: &Case) {
    let want = query_golden(case.kernel, &case.query);
    let minsup = goldens::SMOKE_MINSUP;
    let label = format!("{} serve", case.label());
    let spec = DatasetSpec::Named {
        dataset: DATASET,
        scale: SCALE,
    };

    // Pre-build the store *outside* the armed window: the case under
    // test is the loader, not the producer.
    let store_dir = (case.site == FaultSite::ArtifactCorrupt).then(|| {
        let dir = std::env::temp_dir().join(format!(
            "fpm-chaos-store-{}-{}",
            std::process::id(),
            case.seed
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create chaos store dir");
        let meta = store::SpecMeta::named(
            &DATASET.label().to_ascii_lowercase(),
            SCALE.label(),
        );
        let mut artifact = store::Artifact::build(meta, dataset(), minsup);
        let mut sink = fpm::CollectSink::default();
        MinePlan::kernel(case.kernel, minsup)
            .query(case.query)
            .execute(dataset(), &mut sink);
        artifact.push_result(case.kernel.code(), minsup, case.query.key(), sink.patterns);
        artifact.store(&artifact.path_in(&dir)).expect("write chaos artifact");
        dir
    });

    // The guard is installed before `start`: the artifact-corruption
    // site fires inside the warm-start load. No other site is crossed
    // during boot, so the early install is harmless for them.
    let guard = install(FaultPlan::for_site(case.site, case.seed));
    let svc = MineService::start(ServeConfig {
        shards: 2,
        workers: 1,
        mine_threads: case.threads,
        store_dir: store_dir.clone(),
        ..ServeConfig::default()
    });
    let metrics = svc.metrics();
    let cold = svc.mine(MineRequest::new(spec.clone(), case.kernel, minsup).with_query(case.query));
    let warm = svc.mine(MineRequest::new(spec, case.kernel, minsup).with_query(case.query));
    let fired = guard.plan().fired();
    drop(guard);
    svc.shutdown();
    if let Some(dir) = &store_dir {
        let _ = std::fs::remove_dir_all(dir);
    }

    // Invariant (a) holds for every response that carries patterns: the
    // service never hands out anything but a serial prefix.
    for (resp, phase) in [(&cold, "cold"), (&warm, "warm")] {
        let rendered = resp.patterns.as_ref().map_or_else(Vec::new, |p| render(p));
        assert_line_prefix(&rendered, &want, &format!("{label} {phase}"));
        if resp.outcome == Outcome::Complete && !resp.stats.truncated {
            assert_eq!(
                rendered, want,
                "{label} {phase}: an untruncated Complete answer must be the full golden"
            );
        }
    }

    // Invariant (b): the response taxonomy names the injected cause.
    let outcomes = [cold.outcome, warm.outcome];
    match (case.site, fired > 0) {
        (FaultSite::WorkerPanic, true) => {
            assert!(
                outcomes.contains(&Outcome::Failed),
                "{label}: an injected task panic must answer Failed (got {outcomes:?})"
            );
            let failed: &MineResponse = if cold.outcome == Outcome::Failed { &cold } else { &warm };
            assert!(
                failed.reason.as_deref().is_some_and(|r| r.contains("panicked")),
                "{label}: the Failed reason must name the panic"
            );
        }
        (FaultSite::SpuriousTrip, true) => {
            assert!(
                outcomes.contains(&Outcome::Cancelled),
                "{label}: an injected trip must answer Cancelled (got {outcomes:?})"
            );
        }
        (FaultSite::CacheCorrupt, true) => {
            // The corruption lands on the warm probe; the service must
            // re-mine rather than serve the poisoned entry.
            assert!(
                !warm.stats.cache_hit,
                "{label}: a corrupted entry must not serve as a hit"
            );
            assert_eq!(outcomes, [Outcome::Complete; 2], "{label}: both re-mines succeed");
            assert_eq!(
                metrics.get("cache_integrity_failures"),
                fired,
                "{label}: every fired corruption is counted"
            );
            assert_eq!(metrics.get("mined_runs"), 2, "{label}: the warm request re-mined");
        }
        (FaultSite::AdmissionFlap, true) => {
            assert!(
                outcomes.contains(&Outcome::Rejected),
                "{label}: a flapped admission must answer Rejected (got {outcomes:?})"
            );
            let rejected: &MineResponse =
                if cold.outcome == Outcome::Rejected { &cold } else { &warm };
            assert!(
                rejected.reason.as_deref().is_some_and(|r| r.contains("admission flap")),
                "{label}: the rejection reason must name the flap"
            );
        }
        (FaultSite::ShardStall, true) => {
            // fire_at names a shard index; with the plan re-derived
            // here the flavor tells which failure mode fired.
            if FaultPlan::for_site(case.site, case.seed).shard_stall_panics() {
                // The stalled worker failed the first pickup: the cold
                // request is answered Failed without mining, honestly
                // named; the warm one mines from scratch (nothing was
                // cached) and completes.
                assert_eq!(
                    cold.outcome,
                    Outcome::Failed,
                    "{label}: a failed pickup must answer Failed"
                );
                assert!(
                    cold.reason.as_deref().is_some_and(|r| r.contains("stall")),
                    "{label}: the Failed reason must name the stall"
                );
                assert_eq!(
                    warm.outcome,
                    Outcome::Complete,
                    "{label}: the shard recovers after the injected failure"
                );
                assert!(
                    !warm.stats.cache_hit,
                    "{label}: the failed cold request cached nothing"
                );
                assert_eq!(metrics.get("mined_runs"), 1, "{label}: only the warm request mined");
            } else {
                // The stall only delays pickups: both requests resolve
                // honestly, late but complete, and the warm one still
                // hits the cache.
                assert_eq!(
                    outcomes,
                    [Outcome::Complete; 2],
                    "{label}: a stalled (not failed) shard resolves honestly"
                );
                assert!(warm.stats.cache_hit, "{label}: the warm request must hit the cache");
            }
        }
        (FaultSite::ArtifactCorrupt, true) => {
            // The damaged artifact must be detected at load and the
            // boot degrade to a cold start: nothing loaded, nothing
            // warmed, the cold request honestly re-mines the golden.
            assert_eq!(
                metrics.get("store_integrity_failures"),
                fired,
                "{label}: every fired corruption is detected and counted"
            );
            assert_eq!(
                metrics.get("store_artifacts_loaded"),
                0,
                "{label}: a damaged artifact must not load"
            );
            assert_eq!(
                metrics.get("store_warm_entries"),
                0,
                "{label}: a damaged artifact must warm nothing"
            );
            assert_eq!(outcomes, [Outcome::Complete; 2], "{label}: the cold rebuild succeeds");
            assert!(
                !cold.stats.cache_hit,
                "{label}: the cold request must re-mine, not hit poison"
            );
            assert!(warm.stats.cache_hit, "{label}: the re-mined entry serves the warm probe");
            assert_eq!(metrics.get("mined_runs"), 1, "{label}: exactly the cold rebuild mined");
        }
        (FaultSite::ArtifactCorrupt, false) => {
            // The plan never fired: the warm start must fully take and
            // both requests answer from the store without mining.
            assert_eq!(metrics.get("store_integrity_failures"), 0, "{label}");
            assert_eq!(
                metrics.get("store_artifacts_loaded"),
                1,
                "{label}: the clean artifact must load"
            );
            assert!(
                metrics.get("store_warm_entries") >= 1,
                "{label}: the persisted result must seed the cache"
            );
            assert_eq!(outcomes, [Outcome::Complete; 2], "{label}: warm answers complete");
            assert!(
                cold.stats.cache_hit && warm.stats.cache_hit,
                "{label}: both requests answer from the warm-started cache"
            );
            assert_eq!(
                metrics.get("mined_runs"),
                0,
                "{label}: a warm start means zero mined runs"
            );
        }
        (FaultSite::StealLatency, _) | (_, false) => {
            assert_eq!(
                outcomes,
                [Outcome::Complete; 2],
                "{label}: a clean pair must complete twice"
            );
            assert!(warm.stats.cache_hit, "{label}: the warm request must hit the cache");
        }
    }

    // Invariant (c): no counter regressed — the books balance.
    let by_outcome = metrics.get("requests_completed")
        + metrics.get("requests_cancelled")
        + metrics.get("requests_deadline_exceeded")
        + metrics.get("requests_rejected")
        + metrics.get("requests_failed");
    assert_eq!(
        metrics.get("requests_submitted"),
        by_outcome,
        "{label}: every submitted job must be accounted for by exactly one outcome"
    );
    assert_eq!(
        metrics.get("cache_probes"),
        metrics.get("cache_hits") + metrics.get("cache_misses"),
        "{label}: every cache probe is a hit or a miss"
    );
    assert!(
        metrics.get("cache_integrity_failures") <= metrics.get("cache_misses"),
        "{label}: an integrity failure always reads as a miss"
    );
    assert!(
        metrics.get("cache_expired") <= metrics.get("cache_misses"),
        "{label}: an expired entry always reads as a miss"
    );
    for name in serve::METRIC_NAMES {
        let shard_sum: u64 = (0..svc.shard_count()).map(|s| svc.shard_metrics(s).get(name)).sum();
        assert_eq!(
            shard_sum,
            metrics.get(name),
            "{label}: per-shard {name} counters must sum to the global counter"
        );
    }
}
