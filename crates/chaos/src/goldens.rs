//! The committed golden corpus: serial reference outputs under
//! `tests/goldens/`.
//!
//! For each (dataset, scale, kernel) case the corpus holds two
//! artifacts, both derived from one *serial* [`MinePlan`] run (the
//! emission order every parallel / controlled run must prefix):
//!
//! * one line in `digests.txt` — line count and FNV-1a digest of the
//!   full output, cheap to diff against any full re-mine;
//! * `<stem>.prefix` — the first [`PREFIX_LINES`] lines verbatim, so a
//!   budgeted run (`max_patterns(PREFIX_LINES)`) can be compared
//!   byte-for-byte without ever mining the full output.
//!
//! `cargo xtask regen-goldens` rewrites the corpus (it shells out to
//! this crate's `regen-goldens` bin in release mode); conformance tests
//! and the chaos campaign only ever *read* it. A digest mismatch means
//! kernel behavior changed — either a bug, or an intentional change
//! that must be accompanied by a regenerated corpus in the same commit.

use exec::MinePlan;
use fpm::{Kernel, RecordSink};
use quest::{Dataset, Scale};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Lines kept verbatim in each `.prefix` file.
pub const PREFIX_LINES: u64 = 100;

/// The support threshold of the smoke-scale corpus entries (the chaos
/// campaign's workload). Deliberately above DS1's scale-proportional
/// threshold (30): the campaign full-mines this case hundreds of times,
/// and at 30 one mine emits ~386 K patterns.
pub const SMOKE_MINSUP: u64 = 150;

/// One corpus entry: a dataset at a scale, mined by a kernel at an
/// explicit support threshold (recorded per line in `digests.txt`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoldenCase {
    /// Which evaluation dataset.
    pub dataset: Dataset,
    /// At which reproduction scale.
    pub scale: Scale,
    /// Mined by which kernel.
    pub kernel: Kernel,
    /// The support threshold mined at.
    pub minsup: u64,
}

/// The committed digest of one case's full serial output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest {
    /// The support threshold the output was mined at.
    pub minsup: u64,
    /// Emitted pattern count (= line count).
    pub lines: u64,
    /// FNV-1a over the full emission bytes.
    pub hash: u64,
}

impl GoldenCase {
    /// The smoke-scale campaign case for `kernel` (DS1 at
    /// [`SMOKE_MINSUP`]).
    pub fn smoke(kernel: Kernel) -> GoldenCase {
        GoldenCase {
            dataset: Dataset::Ds1,
            scale: Scale::Smoke,
            kernel,
            minsup: SMOKE_MINSUP,
        }
    }

    /// The CI-scale case for `(dataset, kernel)` at the
    /// scale-proportional support threshold (Table 6 ÷ scale).
    pub fn ci(dataset: Dataset, kernel: Kernel) -> GoldenCase {
        GoldenCase {
            dataset,
            scale: Scale::Ci,
            kernel,
            minsup: dataset.support(Scale::Ci),
        }
    }

    /// The corpus file stem, e.g. `ds1-ci-lcm`.
    pub fn stem(&self) -> String {
        format!(
            "{}-{}-{}",
            self.dataset.label().to_ascii_lowercase(),
            scale_label(self.scale),
            self.kernel.label()
        )
    }

    /// The full serial emission bytes — mined fresh, not read from the
    /// corpus. Asserts the run completed (a golden must never be a
    /// truncated run).
    pub fn serial_bytes(&self) -> Vec<u8> {
        let db = self.dataset.generate(self.scale);
        let mut sink = RecordSink::default();
        let summary = MinePlan::kernel(self.kernel, self.minsup).execute(&db, &mut sink);
        assert!(summary.complete, "golden mine must complete: {}", self.stem());
        sink.bytes
    }
}

/// Lowercase scale label used in corpus stems.
pub fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Ci => "ci",
        Scale::Full => "full",
    }
}

/// The corpus: DS1 at smoke scale (the chaos campaign's workload) plus
/// DS1–DS4 at CI scale, each × all three kernels.
pub fn corpus() -> Vec<GoldenCase> {
    let mut cases = Vec::new();
    for kernel in Kernel::ALL {
        cases.push(GoldenCase::smoke(kernel));
    }
    for dataset in Dataset::ALL {
        for kernel in Kernel::ALL {
            cases.push(GoldenCase::ci(dataset, kernel));
        }
    }
    cases
}

/// Where the corpus lives: `tests/goldens/` at the workspace root.
pub fn dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens")
}

/// FNV-1a over raw bytes — the corpus digest function.
pub fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The first `lines` whole lines of `bytes` (all of them when there are
/// fewer). Always line-aligned by construction.
pub fn prefix_of(bytes: &[u8], lines: u64) -> Vec<u8> {
    if lines == 0 {
        return Vec::new();
    }
    let mut end = 0usize;
    let mut seen = 0u64;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            seen += 1;
            end = i + 1;
            if seen == lines {
                break;
            }
        }
    }
    bytes[..end].to_vec()
}

fn count_lines(bytes: &[u8]) -> u64 {
    bytes.iter().filter(|&&b| b == b'\n').count() as u64
}

/// Parses the committed `digests.txt` into a stem-keyed map. Panics
/// with a pointer to `xtask regen-goldens` when the file is missing.
pub fn load_digests() -> BTreeMap<String, Digest> {
    let path = dir().join("digests.txt");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden digests at {} ({e}); run `cargo xtask regen-goldens`",
            path.display()
        )
    });
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(stem), Some(minsup), Some(lines), Some(hash)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            panic!("malformed digest line {line:?} in {}", path.display());
        };
        let digest = Digest {
            minsup: minsup.parse().expect("digest minsup must be a u64"),
            lines: lines.parse().expect("digest line count must be a u64"),
            hash: u64::from_str_radix(hash, 16).expect("digest hash must be hex"),
        };
        out.insert(stem.to_string(), digest);
    }
    out
}

/// Reads the committed `<stem>.prefix` bytes.
pub fn load_prefix(stem: &str) -> Vec<u8> {
    let path = dir().join(format!("{stem}.prefix"));
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden prefix at {} ({e}); run `cargo xtask regen-goldens`",
            path.display()
        )
    })
}

/// Regenerates the whole corpus in place, returning one human-readable
/// summary line per case. Run through `cargo xtask regen-goldens` (it
/// builds this crate's `regen-goldens` bin in release mode — the CI
/// datasets are minutes-slow unoptimized).
pub fn regen() -> Vec<String> {
    let dir = dir();
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("cannot create {} ({e})", dir.display()));
    let mut digests = String::new();
    digests.push_str(
        "# Golden corpus digests — one line per case:\n\
         #   <stem> <minsup> <lines> <fnv1a-hex>\n\
         # Regenerate with `cargo xtask regen-goldens`; never edit by hand.\n",
    );
    let mut summaries = Vec::new();
    for case in corpus() {
        let start = std::time::Instant::now();
        let bytes = case.serial_bytes();
        let lines = count_lines(&bytes);
        writeln!(
            digests,
            "{} {} {} {:016x}",
            case.stem(),
            case.minsup,
            lines,
            fnv(&bytes)
        )
        .expect("write to String cannot fail");
        let prefix = prefix_of(&bytes, PREFIX_LINES);
        let path = dir.join(format!("{}.prefix", case.stem()));
        std::fs::write(&path, &prefix)
            .unwrap_or_else(|e| panic!("cannot write {} ({e})", path.display()));
        summaries.push(format!(
            "{:<18} minsup={:<5} {:>7} lines  {:>6} prefix bytes  {:.1?}",
            case.stem(),
            case.minsup,
            lines,
            prefix.len(),
            start.elapsed()
        ));
    }
    let path = dir.join("digests.txt");
    std::fs::write(&path, digests)
        .unwrap_or_else(|e| panic!("cannot write {} ({e})", path.display()));
    summaries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_covers_all_kernels_at_both_scales() {
        let cases = corpus();
        assert_eq!(cases.len(), 15, "3 smoke + 12 ci cases");
        for kernel in Kernel::ALL {
            assert!(cases.contains(&GoldenCase::smoke(kernel)));
            for dataset in Dataset::ALL {
                assert!(cases.contains(&GoldenCase::ci(dataset, kernel)));
            }
        }
    }

    #[test]
    fn stems_are_unique_and_stable() {
        let mut stems: Vec<String> = corpus().iter().map(GoldenCase::stem).collect();
        assert!(stems.contains(&"ds1-smoke-lcm".to_string()));
        assert!(stems.contains(&"ds4-ci-fpgrowth".to_string()));
        let n = stems.len();
        stems.sort();
        stems.dedup();
        assert_eq!(stems.len(), n, "stems must be unique");
    }

    #[test]
    fn prefix_of_is_line_aligned() {
        let bytes = b"1:5\n1,2:3\n2:4\n";
        assert_eq!(prefix_of(bytes, 0), b"");
        assert_eq!(prefix_of(bytes, 1), b"1:5\n");
        assert_eq!(prefix_of(bytes, 2), b"1:5\n1,2:3\n");
        assert_eq!(prefix_of(bytes, 3), bytes);
        assert_eq!(prefix_of(bytes, 99), bytes, "short output: keep everything");
        // A trailing partial line is never included.
        assert_eq!(prefix_of(b"1:5\n2:4", 99), b"1:5\n");
    }

    #[test]
    fn fnv_distinguishes_and_is_stable() {
        assert_ne!(fnv(b"1:5\n"), fnv(b"1:6\n"));
        assert_eq!(fnv(b""), 0xcbf2_9ce4_8422_2325, "FNV offset basis");
        assert_eq!(fnv(b"1:5\n"), fnv(b"1:5\n"));
    }

    #[test]
    fn smoke_goldens_match_the_committed_corpus() {
        // The cheap end-to-end check (the CI-scale cases are covered by
        // the root conformance suite): re-mine the three smoke cases
        // and diff against the committed digests and prefix files.
        let digests = load_digests();
        for kernel in Kernel::ALL {
            let case = GoldenCase::smoke(kernel);
            let bytes = case.serial_bytes();
            let want = digests
                .get(&case.stem())
                .unwrap_or_else(|| panic!("{} missing from digests.txt", case.stem()));
            assert_eq!(want.minsup, case.minsup, "{}", case.stem());
            assert_eq!(want.lines, count_lines(&bytes), "{}", case.stem());
            assert_eq!(want.hash, fnv(&bytes), "{}: full-output digest", case.stem());
            assert_eq!(
                load_prefix(&case.stem()),
                prefix_of(&bytes, PREFIX_LINES),
                "{}: committed prefix",
                case.stem()
            );
        }
    }
}
