//! Regenerates the committed golden corpus under `tests/goldens/`.
//!
//! Run through `cargo xtask regen-goldens` (release mode — the CI-scale
//! datasets are minutes-slow unoptimized).

fn main() {
    for line in chaos::goldens::regen() {
        println!("{line}");
    }
    println!(
        "corpus written to {}",
        chaos::goldens::dir().display()
    );
}
