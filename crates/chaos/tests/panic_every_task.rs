//! Regression for the panicked-task replay hole: a worker panic
//! mid-run must leave the failed task's slot explicitly incomplete, so
//! the rank-ordered prefix replay can never replay a task that did not
//! finish. Sweeps an injected panic across *every* task index of a
//! small dataset, at every thread count, for all three kernels.
#![cfg(feature = "chaos")]

use chaos::campaign;
use exec::MinePlan;
use fpm::control::{MineControl, StopCause};
use fpm::faults::{install, FaultPlan, FaultSite};
use fpm::{RecordSink, TransactionDb};
use par::ParConfig;

fn small_db() -> TransactionDb {
    TransactionDb::from_transactions(vec![
        vec![0, 2, 5, 7],
        vec![1, 2, 5, 8],
        vec![0, 2, 5, 9],
        vec![3, 4, 7, 8],
        vec![0, 1, 2, 3, 4, 5],
        vec![5, 7, 8, 9],
        vec![0, 3, 5, 7, 9],
    ])
}

#[test]
fn a_panic_at_every_task_index_cuts_a_clean_prefix() {
    // The fault-plan slot is process-global; serialize with anything
    // else that installs plans in this binary.
    let _serialize = campaign::lock().lock().unwrap_or_else(|e| e.into_inner());
    let db = small_db();
    for kernel in fpm::Kernel::ALL {
        let mut golden = RecordSink::default();
        assert!(MinePlan::kernel(kernel, 2).execute(&db, &mut golden).complete);
        for threads in [1usize, 2, 4] {
            // Walk the panic forward one task at a time until the plan
            // stops firing — i.e. past the last root task.
            let mut indices_hit = 0u64;
            for k in 0u64.. {
                let guard = install(FaultPlan::at(FaultSite::WorkerPanic, k));
                let control = MineControl::unlimited();
                let mut sink = RecordSink::default();
                let summary = MinePlan::kernel(kernel, 2)
                    .par_config(ParConfig::with_threads(threads))
                    .execute_controlled(&db, &control, &mut sink);
                let fired = guard.plan().fired();
                drop(guard);
                let ctx = format!("kernel={} threads={threads} task={k}", kernel.label());
                if fired == 0 {
                    // Past the task list: the run must be untouched.
                    assert!(summary.complete, "{ctx}: no panic, run must complete");
                    assert_eq!(sink.bytes, golden.bytes, "{ctx}");
                    break;
                }
                indices_hit += 1;
                assert_eq!(
                    summary.stop_cause,
                    Some(StopCause::TaskPanicked),
                    "{ctx}: the panic must be the recorded first cause"
                );
                assert!(!summary.complete, "{ctx}: a panicked run cannot be complete");
                assert!(
                    golden.bytes.starts_with(&sink.bytes),
                    "{ctx}: output after a task panic must be a serial prefix"
                );
                assert!(
                    sink.bytes.is_empty() || sink.bytes.ends_with(b"\n"),
                    "{ctx}: prefix must be line-aligned"
                );
                // The cut lands strictly before the panicked task: with
                // the panic at task 0, nothing may be replayed at all.
                if k == 0 {
                    assert!(sink.bytes.is_empty(), "{ctx}: task 0 panicked, nothing finished before it");
                }
            }
            assert!(
                indices_hit >= 2,
                "kernel={} threads={threads}: the sweep must cover several tasks (hit {indices_hit})",
                kernel.label()
            );
        }
    }
}
