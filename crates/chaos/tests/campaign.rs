//! The checked-in campaign sweep: 96 seeds through the full
//! `site × kernel × threads` matrix, each seed one deterministic case.
//!
//! Reproduce any reported failure standalone with
//! `FPM_CHAOS_SEED=<n> cargo test -p chaos --features chaos` — the seed
//! alone re-derives the case and the fault schedule.
#![cfg(feature = "chaos")]

use chaos::campaign::{self, Case, CAMPAIGN_SEEDS};
use std::collections::BTreeSet;

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[test]
fn deterministic_campaign_covers_the_fault_matrix() {
    let _serialize = campaign::lock().lock().unwrap_or_else(|e| e.into_inner());

    // Single-case reproduction: the whole point of seed-derived plans.
    if let Ok(seed) = std::env::var("FPM_CHAOS_SEED") {
        let seed: u64 = seed.parse().expect("FPM_CHAOS_SEED must be a u64");
        eprintln!("replaying campaign case {}", Case::from_seed(seed).label());
        campaign::run_case(seed);
        return;
    }

    // The sweep must exercise every cell of the matrix.
    let covered: BTreeSet<(&str, &str, usize)> = (0..CAMPAIGN_SEEDS)
        .map(|seed| {
            let c = Case::from_seed(seed);
            (c.site.label(), c.kernel.label(), c.threads)
        })
        .collect();
    assert_eq!(
        covered.len(),
        63,
        "the {CAMPAIGN_SEEDS}-seed sweep must cover all 7 sites x 3 kernels x 3 thread counts"
    );

    // The remix seeds extend the matrix with a query dimension: every
    // query variant (identity, closed postfilter, top-k) must appear,
    // and non-identity queries must meet more than one fault site.
    let queries: BTreeSet<String> = (0..CAMPAIGN_SEEDS)
        .map(|seed| Case::from_seed(seed).query.label())
        .collect();
    assert_eq!(
        queries.len(),
        campaign::campaign_queries().len(),
        "the sweep must cover every query variant (got {queries:?})"
    );
    let query_sites: BTreeSet<&str> = (0..CAMPAIGN_SEEDS)
        .map(Case::from_seed)
        .filter(|c| !c.query.is_all())
        .map(|c| c.site.label())
        .collect();
    assert!(
        query_sites.len() >= 3,
        "non-identity queries must sweep several fault sites (got {query_sites:?})"
    );

    // Drive the cases under a quiet hook (an injected worker panic is
    // expected noise); a real invariant violation re-panics with the
    // reproduction command attached.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut failure = None;
    for seed in 0..CAMPAIGN_SEEDS {
        if let Err(payload) = std::panic::catch_unwind(|| campaign::run_case(seed)) {
            failure = Some((seed, panic_text(payload.as_ref())));
            break;
        }
    }
    std::panic::set_hook(default_hook);
    if let Some((seed, message)) = failure {
        panic!(
            "campaign case failed — reproduce with \
             `FPM_CHAOS_SEED={seed} cargo test -p chaos --features chaos`:\n{message}"
        );
    }
}
