//! Directed shard-stall drills (beyond the seeded campaign sweep): a
//! stalled shard's requests must resolve honestly — late, or failed
//! with the true cause named — while requests routed to other shards
//! drain unaffected, and every counter invariant holds afterwards.
#![cfg(feature = "chaos")]

use chaos::campaign::{self, golden, render, SCALE};
use fpm::faults::{install, FaultPlan, FaultSite};
use fpm::Kernel;
use quest::Dataset;
use serve::{DatasetSpec, MineRequest, MineService, Outcome, ServeConfig};

const SHARDS: usize = 4;

/// Which shard index `seed`'s plan fires on, discovered behaviorally on
/// a throwaway install (plans are pure functions of the seed, so the
/// real run re-derives an identical, unconsumed plan).
fn fire_shard_of(seed: u64) -> Option<usize> {
    let guard = install(FaultPlan::for_site(FaultSite::ShardStall, seed));
    for k in 0..SHARDS {
        let before = guard.plan().fired();
        let _ = fpm::faults::shard_stall(k);
        if guard.plan().fired() > before {
            return Some(k);
        }
    }
    None
}

/// The first seed whose plan targets `shard` with the wanted flavor.
fn seed_targeting(shard: usize, panics: bool) -> u64 {
    (0..10_000u64)
        .find(|&seed| {
            FaultPlan::for_site(FaultSite::ShardStall, seed).shard_stall_panics() == panics
                && fire_shard_of(seed) == Some(shard)
        })
        .expect("a few thousand seeds cover every (shard, flavor) cell")
}

fn smoke_spec() -> DatasetSpec {
    DatasetSpec::Named {
        dataset: campaign::DATASET,
        scale: SCALE,
    }
}

/// Inline specs routed to shards other than `avoid`, one per other
/// shard where the hash happens to land.
fn other_shard_specs(svc: &MineService, avoid: usize) -> Vec<(usize, DatasetSpec)> {
    let mut found: Vec<(usize, DatasetSpec)> = Vec::new();
    for i in 0..64u32 {
        let spec = DatasetSpec::Inline(vec![vec![i, i + 1, i + 2], vec![i, i + 1], vec![i]]);
        let shard = svc.shard_of(&spec);
        if shard != avoid && !found.iter().any(|(s, _)| *s == shard) {
            found.push((shard, spec));
        }
    }
    assert!(
        !found.is_empty(),
        "64 distinct inline datasets must reach at least one other shard"
    );
    found
}

fn check_books(svc: &MineService) {
    let m = svc.metrics();
    let by_outcome = m.get("requests_completed")
        + m.get("requests_cancelled")
        + m.get("requests_deadline_exceeded")
        + m.get("requests_rejected")
        + m.get("requests_failed");
    assert_eq!(m.get("requests_submitted"), by_outcome, "every job has one outcome");
    assert_eq!(m.get("cache_probes"), m.get("cache_hits") + m.get("cache_misses"));
    for name in serve::METRIC_NAMES {
        let shard_sum: u64 = (0..svc.shard_count()).map(|s| svc.shard_metrics(s).get(name)).sum();
        assert_eq!(shard_sum, m.get(name), "{name}: shard sum != global");
    }
}

#[test]
fn stalled_shard_resolves_late_while_others_drain() {
    let _serialize = campaign::lock().lock().unwrap_or_else(|e| e.into_inner());
    let svc = MineService::start(ServeConfig {
        shards: SHARDS,
        workers: 1,
        ..ServeConfig::default()
    });
    let target = svc.shard_of(&smoke_spec());
    let seed = seed_targeting(target, false);

    let guard = install(FaultPlan::for_site(FaultSite::ShardStall, seed));
    // The stalled shard's request and one request per other reachable
    // shard, all in flight together.
    let stalled = svc.submit(MineRequest::new(
        smoke_spec(),
        Kernel::Lcm,
        chaos::goldens::SMOKE_MINSUP,
    ));
    let others: Vec<_> = other_shard_specs(&svc, target)
        .into_iter()
        .map(|(_, spec)| svc.submit(MineRequest::new(spec, Kernel::Lcm, 1)))
        .collect();
    for t in others {
        let resp = t.wait();
        assert_eq!(
            resp.outcome,
            Outcome::Complete,
            "other shards drain while one shard is stalled"
        );
    }
    let resp = stalled.wait();
    assert!(guard.plan().fired() > 0, "the stall must actually have fired");
    drop(guard);

    // Late, but honest: the complete serial result, byte for byte.
    assert_eq!(resp.outcome, Outcome::Complete, "a delayed pickup still completes");
    assert!(!resp.stats.truncated);
    let rendered = render(resp.patterns.as_ref().expect("patterns included"));
    assert_eq!(
        rendered,
        golden(Kernel::Lcm),
        "the stalled shard's answer is the full serial golden"
    );
    check_books(&svc);
    svc.shutdown();
}

#[test]
fn failed_pickup_names_the_stall_and_the_shard_recovers() {
    let _serialize = campaign::lock().lock().unwrap_or_else(|e| e.into_inner());
    let svc = MineService::start(ServeConfig {
        shards: SHARDS,
        workers: 1,
        ..ServeConfig::default()
    });
    let target = svc.shard_of(&smoke_spec());
    let seed = seed_targeting(target, true);

    let guard = install(FaultPlan::for_site(FaultSite::ShardStall, seed));
    let failed = svc.mine(MineRequest::new(
        smoke_spec(),
        Kernel::Lcm,
        chaos::goldens::SMOKE_MINSUP,
    ));
    assert_eq!(failed.outcome, Outcome::Failed, "the failed pickup is not papered over");
    assert!(
        failed.reason.as_deref().is_some_and(|r| r.contains("stall")),
        "the Failed reason names the stall, got {:?}",
        failed.reason
    );
    assert_eq!(failed.count, 0, "a job failed at pickup emitted nothing");

    // The panic flavor fires exactly once: the shard takes the next
    // request and serves the full result.
    let retry = svc.mine(MineRequest::new(
        smoke_spec(),
        Kernel::Lcm,
        chaos::goldens::SMOKE_MINSUP,
    ));
    drop(guard);
    assert_eq!(retry.outcome, Outcome::Complete, "the shard recovers after the failure");
    let rendered = render(retry.patterns.as_ref().expect("patterns included"));
    assert_eq!(rendered, golden(Kernel::Lcm));
    assert_eq!(
        svc.metrics().get("requests_failed"),
        1,
        "exactly the one injected failure is on the books"
    );
    check_books(&svc);
    svc.shutdown();
}
