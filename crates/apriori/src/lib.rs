//! # `fpm-apriori` — breadth-first Apriori miner
//!
//! The classical level-wise algorithm of Agrawal & Srikant (VLDB'94): the
//! paper cites it as the baseline family it deliberately does *not* tune
//! ("we did not cover breadth-first search algorithms … because the
//! depth-first search algorithms are generally considered to be more
//! efficient", §4). This workspace keeps an implementation anyway, for
//! two jobs:
//!
//! 1. **oracle** — a structurally different algorithm whose output the
//!    depth-first kernels are cross-checked against in the integration
//!    tests;
//! 2. **baseline** — the reference point that lets benchmarks show why
//!    the paper starts from depth-first kernels at all.
//!
//! The implementation is the textbook one: generate candidate k-itemsets
//! by joining frequent (k−1)-itemsets that share a (k−2)-prefix, prune
//! candidates with an infrequent subset, then count supports in one pass
//! over the database per level (with a hash join from transactions to
//! candidates).

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use fpm::{remap, PatternSink, TransactionDb, TranslateSink};
use std::collections::HashMap;

/// Mines every frequent itemset of `db` at `minsup`, delivering patterns
/// (in original item ids, sorted) to `sink`.
pub fn mine<S: PatternSink>(db: &TransactionDb, minsup: u64, sink: &mut S) {
    let ranked = remap(db, minsup);
    let mut translate = TranslateSink::new(&ranked.map, PassThrough(sink));
    mine_ranked(&ranked.transactions, ranked.n_ranks(), minsup, &ranked, &mut translate);
}

struct PassThrough<'a, S>(&'a mut S);
impl<S: PatternSink> PatternSink for PassThrough<'_, S> {
    fn emit(&mut self, itemset: &[u32], support: u64) {
        self.0.emit(itemset, support);
    }
}

fn mine_ranked<S: PatternSink>(
    transactions: &[Vec<u32>],
    n_ranks: usize,
    minsup: u64,
    ranked: &fpm::RankedDb,
    sink: &mut S,
) {
    let minsup = minsup.max(1);
    // Level 1: the remapper already counted singleton supports.
    let mut frequent: Vec<Vec<u32>> = Vec::new();
    for r in 0..n_ranks as u32 {
        let s = ranked.map.support(r);
        debug_assert!(s >= minsup);
        sink.emit(&[r], s);
        frequent.push(vec![r]);
    }
    let mut k = 2usize;
    while !frequent.is_empty() {
        let candidates = generate_candidates(&frequent);
        if candidates.is_empty() {
            break;
        }
        let counts = count_supports(transactions, &candidates, k);
        let mut next = Vec::new();
        for (c, s) in candidates.into_iter().zip(counts) {
            if s >= minsup {
                sink.emit(&c, s);
                next.push(c);
            }
        }
        frequent = next;
        k += 1;
    }
}

/// Joins frequent (k−1)-itemsets sharing a (k−2)-prefix and prunes
/// candidates with an infrequent (k−1)-subset. `frequent` must be sorted
/// (it is, by construction: ranks ascend within sets and sets are
/// generated in lexicographic order).
fn generate_candidates(frequent: &[Vec<u32>]) -> Vec<Vec<u32>> {
    // deterministic-iteration audit: membership probes (`contains`) only;
    // candidates are emitted in the lexicographic order of `frequent`.
    let set: std::collections::HashSet<&[u32]> =
        frequent.iter().map(|f| f.as_slice()).collect();
    let mut out = Vec::new();
    // Group by shared prefix: frequent is lexicographically sorted, so
    // same-prefix runs are contiguous.
    let mut start = 0;
    while start < frequent.len() {
        let prefix = &frequent[start][..frequent[start].len() - 1];
        let mut end = start + 1;
        while end < frequent.len() && &frequent[end][..prefix.len()] == prefix {
            end += 1;
        }
        for i in start..end {
            for j in i + 1..end {
                let mut cand = frequent[i].clone();
                cand.push(*frequent[j].last().expect("nonempty"));
                // Apriori prune: every (k-1)-subset must be frequent. The
                // two parents are; check the rest.
                let prune = (0..cand.len() - 2).any(|drop| {
                    let mut sub = cand.clone();
                    sub.remove(drop);
                    !set.contains(sub.as_slice())
                });
                if !prune {
                    out.push(cand);
                }
            }
        }
        start = end;
    }
    out
}

/// Counts candidate supports in one database pass: for each transaction,
/// enumerate its k-subsets only when the transaction is short, otherwise
/// probe each candidate against the transaction (both via a hash map from
/// candidate to index).
fn count_supports(transactions: &[Vec<u32>], candidates: &[Vec<u32>], k: usize) -> Vec<u64> {
    // deterministic-iteration audit: probed with `get` only; supports are
    // accumulated into a Vec indexed by candidate rank, never in hash order.
    let index: HashMap<&[u32], usize> = candidates
        .iter()
        .enumerate()
        .map(|(i, c)| (c.as_slice(), i))
        .collect();
    let mut counts = vec![0u64; candidates.len()];
    let mut subset = vec![0u32; k];
    for t in transactions {
        if t.len() < k {
            continue;
        }
        // Enumerating C(|t|, k) subsets explodes for long transactions;
        // cap the work by probing candidates instead when cheaper.
        let n_subsets = binomial_capped(t.len(), k, candidates.len() * 4);
        if n_subsets <= candidates.len() * 4 {
            enumerate_subsets(t, k, &mut subset, 0, 0, &mut |s: &[u32]| {
                if let Some(&ci) = index.get(s) {
                    counts[ci] += 1;
                }
            });
        } else {
            for (ci, c) in candidates.iter().enumerate() {
                if is_subset(c, t) {
                    counts[ci] += 1;
                }
            }
        }
    }
    counts
}

fn binomial_capped(n: usize, k: usize, cap: usize) -> usize {
    let mut acc: usize = 1;
    for i in 0..k {
        acc = acc.saturating_mul(n - i) / (i + 1);
        if acc > cap {
            return cap + 1;
        }
    }
    acc
}

fn enumerate_subsets(
    t: &[u32],
    k: usize,
    buf: &mut Vec<u32>,
    depth: usize,
    from: usize,
    f: &mut impl FnMut(&[u32]),
) {
    if depth == k {
        f(&buf[..k]);
        return;
    }
    // leave room for the remaining picks
    for i in from..=t.len() - (k - depth) {
        buf[depth] = t[i];
        enumerate_subsets(t, k, buf, depth + 1, i + 1, f);
    }
}

fn is_subset(small: &[u32], big: &[u32]) -> bool {
    // both sorted: linear merge
    let mut bi = 0;
    'outer: for &s in small {
        while bi < big.len() {
            match big[bi].cmp(&s) {
                std::cmp::Ordering::Less => bi += 1,
                std::cmp::Ordering::Equal => {
                    bi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpm::types::canonicalize;
    use fpm::CollectSink;

    fn run(db: &TransactionDb, minsup: u64) -> Vec<fpm::ItemsetCount> {
        let mut sink = CollectSink::default();
        mine(db, minsup, &mut sink);
        canonicalize(sink.patterns)
    }

    fn toy() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            vec![0, 2, 5],
            vec![1, 2, 5],
            vec![0, 2, 5],
            vec![3, 4],
            vec![0, 1, 2, 3, 4, 5],
        ])
    }

    #[test]
    fn matches_naive_on_toy() {
        for minsup in 1..=5u64 {
            let got = run(&toy(), minsup);
            let expect = canonicalize(fpm::naive::mine(&toy(), minsup));
            assert_eq!(got, expect, "minsup={minsup}");
        }
    }

    #[test]
    fn matches_naive_on_long_transactions() {
        // long transactions exercise the probe-side of count_supports
        let db = TransactionDb::from_transactions(vec![
            (0..20).collect(),
            (0..20).collect(),
            (5..25).collect(),
            vec![1, 2, 3],
        ]);
        let got = run(&db, 2);
        let expect = canonicalize(fpm::naive::mine(&db, 2));
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_and_degenerate() {
        assert!(run(&TransactionDb::default(), 1).is_empty());
        let single = TransactionDb::from_transactions(vec![vec![3]]);
        let got = run(&single, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].items, vec![3]);
        assert_eq!(got[0].support, 1);
    }

    #[test]
    fn minsup_above_everything_yields_nothing() {
        assert!(run(&toy(), 6).is_empty());
    }

    #[test]
    fn is_subset_merge() {
        assert!(is_subset(&[1, 3], &[0, 1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[0, 1, 2, 3]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[1], &[]));
    }

    #[test]
    fn candidate_generation_prunes() {
        // frequent 2-sets: {0,1},{0,2},{1,2},{1,3} → join gives {0,1,2}
        // (kept: all subsets frequent) and {1,2,3} (pruned: {2,3} missing).
        let frequent = vec![vec![0, 1], vec![0, 2], vec![1, 2], vec![1, 3]];
        let cands = generate_candidates(&frequent);
        assert_eq!(cands, vec![vec![0, 1, 2]]);
    }
}
