//! # `also-fpm` — facade crate
//!
//! Re-exports the whole workspace: the ALSO tuning-pattern library
//! ([`also`]), the mining substrate ([`fpm`]), the dataset generators
//! ([`quest`]), the memory-hierarchy simulator ([`memsim`]), the shared
//! work-stealing parallel runtime ([`par`]), the unified mining
//! executor ([`exec`]), the four miners
//! ([`lcm`], [`eclat`], [`fpgrowth`], [`apriori`]), and the mining
//! service layer ([`serve`]).
//!
//! See the repository `README.md` for a quickstart and `DESIGN.md` for the
//! system inventory; the runnable entry points live in `examples/`.
//!
//! ```
//! use also_fpm::fpm::{CollectSink, TransactionDb};
//!
//! let db = TransactionDb::from_transactions(vec![
//!     vec![1, 2, 3],
//!     vec![1, 2],
//!     vec![2, 3],
//! ]);
//! let mut sink = CollectSink::default();
//! also_fpm::lcm::mine(&db, 2, &also_fpm::lcm::LcmConfig::all(), &mut sink);
//! let patterns = also_fpm::fpm::types::canonicalize(sink.patterns);
//! assert!(patterns.iter().any(|p| p.items == vec![1, 2] && p.support == 2));
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub use also;
pub use apriori;
pub use eclat;
pub use exec;
pub use fpgrowth;
pub use fpm;
pub use lcm;
pub use memsim;
pub use par;
pub use quest;
pub use serve;
