//! Offline stand-in for `serde_derive`.
//!
//! This workspace derives `Serialize`/`Deserialize` on config and report
//! types purely as API decoration — no code path serializes anything (there
//! is no `serde_json`/`bincode` in the dependency tree). The build
//! environment has no network access to crates.io, so instead of the real
//! proc macros these derives expand to an **empty token stream**: the
//! attribute is accepted, and the companion `serde` stub provides blanket
//! trait impls so `T: Serialize` bounds (if any appear later) still hold.
//!
//! If real serialization is ever needed, replace `vendor/serde*` with the
//! crates.io packages; no workspace source changes are required.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
