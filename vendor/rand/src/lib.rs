//! Offline stand-in for `rand` 0.9.
//!
//! Provides the API subset the `fpm-quest` generators use — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{random, random_range, sample}` and
//! `distr::StandardUniform` — backed by xoshiro256++ seeded through
//! SplitMix64. The streams differ from the real `rand::rngs::StdRng`
//! (ChaCha12), but every consumer in this workspace only requires
//! *deterministic* generation with sound uniform statistics, which this
//! supplies; dataset shapes (Poisson/Zipf/geometric mixtures) are
//! preserved because the generators transform plain uniform variates.

/// Distributions (the `rand::distr` subset in use).
pub mod distr {
    use crate::RngCore;

    /// A distribution that can generate values of `T` from an RNG.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard uniform distribution: `[0, 1)` for floats, full range
    /// for integers, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct StandardUniform;

    impl Distribution<f64> for StandardUniform {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 high bits → uniform double in [0, 1)
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for StandardUniform {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Distribution<bool> for StandardUniform {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            // use a high bit: low bits of some generators are weaker
            rng.next_u64() >> 63 == 1
        }
    }

    macro_rules! int_uniform {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for StandardUniform {
                #[inline]
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open integer range usable with [`Rng::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                assert!(span > 0, "cannot sample from empty range");
                // Debiased multiply-shift (Lemire); the span here is tiny
                // relative to 2^64 so a single draw suffices.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                let span = (e as u64).wrapping_sub(s as u64).wrapping_add(1);
                if span == 0 {
                    // full-width inclusive range
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                s + hi as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience methods over any [`RngCore`] (the `rand::Rng` subset).
pub trait Rng: RngCore {
    /// Draws a value of `T` from the standard uniform distribution.
    #[inline]
    fn random<T>(&mut self) -> T
    where
        distr::StandardUniform: distr::Distribution<T>,
    {
        use distr::Distribution as _;
        distr::StandardUniform.sample(self)
    }

    /// Draws uniformly from a half-open or inclusive integer range.
    #[inline]
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// Draws one value from `dist`.
    #[inline]
    fn sample<T, D: distr::Distribution<T>>(&mut self, dist: D) -> T {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic standard RNG: xoshiro256++ with
    /// SplitMix64 seed expansion. (The real `StdRng` is ChaCha12; only
    /// determinism and uniformity are relied upon here.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna)
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_cover_uniformly() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "bucket {i}: {c}");
        }
        // bounds are respected for u32 too
        for _ in 0..1000 {
            let v = rng.random_range(5u32..8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn bool_is_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4600..5400).contains(&heads), "{heads}");
    }
}
