//! Offline stand-in for `criterion` 0.5.
//!
//! Provides the API subset the `fpm-bench` benches use —
//! `criterion_group!`/`criterion_main!`, [`Criterion::benchmark_group`],
//! `BenchmarkGroup::{sample_size, throughput, bench_function,
//! bench_with_input, finish}`, [`BenchmarkId`] and [`Throughput`] — with
//! simple wall-clock measurement: each sample times a batch of
//! iterations and the median per-iteration time is reported on stdout.
//! There is no statistical analysis, HTML report, or saved baseline;
//! the numbers are honest medians, which is all the EXPERIMENTS
//! methodology relies on for the relative comparisons it plots.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group (printed, not analyzed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `name/parameter`, either part optional.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id (the group name supplies the function part).
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    /// Iterations per sample, tuned from a calibration run.
    iters: u64,
    sample_count: usize,
}

impl Bencher {
    /// Times `routine` over `sample_count` samples and records the
    /// per-iteration duration of each.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: find an iteration count that makes one sample
        // take roughly 5ms, so short routines are not all timer noise.
        let start = Instant::now();
        std_black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample = Duration::from_millis(5);
        self.iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters {
                std_black_box(routine());
            }
            self.samples.push(start.elapsed() / self.iters as u32);
        }
    }

    fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        s.sort();
        s.get(s.len() / 2).copied().unwrap_or_default()
    }
}

/// A named group of benchmarks sharing sample-count configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    // Borrow ties the group to its Criterion like upstream's signature.
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (upstream default 100; the stand-in keeps
    /// runs fast with 20 unless the bench overrides it).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the group's throughput annotation.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            iters: 1,
            sample_count: self.sample_size,
        };
        f(&mut b);
        self.report(&id.id, &b);
        self
    }

    /// Runs one benchmark with an input reference.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            iters: 1,
            sample_count: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    fn report(&self, id: &str, b: &Bencher) {
        let med = b.median();
        let tput = match self.throughput {
            Some(Throughput::Bytes(n)) if med.as_nanos() > 0 => {
                let gib = n as f64 / med.as_secs_f64() / (1u64 << 30) as f64;
                format!("  {gib:.3} GiB/s")
            }
            Some(Throughput::Elements(n)) if med.as_nanos() > 0 => {
                let meps = n as f64 / med.as_secs_f64() / 1e6;
                format!("  {meps:.3} Melem/s")
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: median {} over {} samples x {} iters{tput}",
            self.name,
            fmt_duration(med),
            b.samples.len(),
            b.iters,
        );
    }

    /// Ends the group (output already flushed per benchmark).
    pub fn finish(self) {}
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// Bundles target functions into one group runner, like upstream's
/// plain form `criterion_group!(benches, f, g, …)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` from group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_closures_and_report() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(64));
        let mut runs = 0u32;
        g.bench_function("spin", |b| {
            runs += 1;
            b.iter(|| (0..100u64).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn benchmark_ids_format_like_upstream() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    criterion_group!(sample_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1u64 + 1));
    }

    #[test]
    fn macro_generated_group_is_callable() {
        sample_group();
    }
}
