//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate reimplements
//! the subset of proptest this workspace's property tests use:
//!
//! * the [`proptest!`] macro (optionally with `#![proptest_config(...)]`),
//!   binding `pat in strategy` arguments per case;
//! * strategies: integer/float ranges, [`any`], tuples of strategies,
//!   [`Just`], `prop::collection::{vec, btree_set}`, and
//!   [`Strategy::prop_map`] / [`Strategy::prop_filter`];
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * [`ProptestConfig::with_cases`], with a `PROPTEST_CASES` environment
//!   override so CI can pin the case count.
//!
//! Differences from real proptest, deliberately accepted for this
//! workspace: no shrinking (failures print the case seed instead — rerun
//! with `PROPTEST_SEED=<seed>` to reproduce a single failing case), and
//! `.proptest-regressions` files are ignored.

pub mod test_runner;

pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Outcome of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator. `Value` mirrors proptest's associated type so
/// signatures like `impl Strategy<Value = T>` compile unchanged.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred` (regenerates, bounded attempts).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
    }
}

/// A type-erased strategy (`Strategy::boxed`).
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start() as i128, *self.end() as i128);
                let span = (e - s + 1) as u128;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (s + hi) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// The whole-domain strategy for `T` (`any::<u32>()` etc).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Vec of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// BTreeSet of `element` values with target size drawn from `size`
    /// (duplicates are retried a bounded number of times, like proptest).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.clone().generate(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < 8 * target + 16 {
                attempts += 1;
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Everything the tests import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Drives one property: `cases` iterations with per-case deterministic
/// seeds derived from the test name. Called by the [`proptest!`] expansion.
pub fn run_prop_test<F>(config: ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases)
        .max(1);
    let fixed_seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    for case in 0..cases {
        let seed = fixed_seed.unwrap_or_else(|| h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = TestRng::from_seed(seed);
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest case {case}/{cases} of {name} failed (reproduce with PROPTEST_SEED={seed}): {e}"
            );
        }
        if fixed_seed.is_some() {
            break;
        }
    }
}

/// The `proptest!` macro: wraps each `fn name(pat in strategy, ..) { .. }`
/// into a `#[test]` running [`run_prop_test`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. The leading attribute
/// capture also swallows the user's `#[test]`, which is re-emitted.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$attr:meta])* fn $name:ident( $($args:tt)* ) $body:block )* ) => {
        $(
            $(#[$attr])*
            fn $name() {
                $crate::run_prop_test($cfg, stringify!($name), |__proptest_rng| {
                    $crate::__proptest_bind!(__proptest_rng, $($args)*);
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Internal: binds `pat in strategy` argument lists case by case.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, mut $x:ident in $s:expr) => {
        #[allow(unused_mut)]
        let mut $x = $crate::Strategy::generate(&($s), $rng);
    };
    ($rng:ident, mut $x:ident in $s:expr, $($rest:tt)*) => {
        #[allow(unused_mut)]
        let mut $x = $crate::Strategy::generate(&($s), $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $x:ident in $s:expr) => {
        let $x = $crate::Strategy::generate(&($s), $rng);
    };
    ($rng:ident, $x:ident in $s:expr, $($rest:tt)*) => {
        let $x = $crate::Strategy::generate(&($s), $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

/// `assert!` returning a [`TestCaseError`] instead of panicking, so the
/// runner can report the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)
            )));
        }
    };
}

/// `assert_eq!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)*), l, r
            )));
        }
    }};
}

/// `assert_ne!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
}
