//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate reimplements
//! the subset of proptest this workspace's property tests use:
//!
//! * the [`proptest!`] macro (optionally with `#![proptest_config(...)]`),
//!   binding `pat in strategy` arguments per case;
//! * strategies: integer/float ranges, [`any`], tuples of strategies,
//!   [`Just`], `prop::collection::{vec, btree_set}`, and
//!   [`Strategy::prop_map`] / [`Strategy::prop_filter`];
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * [`ProptestConfig::with_cases`], with a `PROPTEST_CASES` environment
//!   override so CI can pin the case count.
//!
//! Differences from real proptest, deliberately accepted for this
//! workspace: no shrinking — failures print the case seed instead (rerun
//! with `PROPTEST_SEED=<seed>` to reproduce a single failing case).
//!
//! `.proptest-regressions` files *are* honoured, with a seed-based
//! format: a failing case appends `seed <n> # <test name>` to the file
//! sibling to the test source, and every matching `seed` line is
//! replayed before novel cases on subsequent runs (commit the file so CI
//! replays it too). `cc <hash>` lines written by real proptest encode
//! shrunk values, which a stand-in without shrinking cannot decode —
//! they are kept but skipped.

pub mod test_runner;

pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Outcome of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator. `Value` mirrors proptest's associated type so
/// signatures like `impl Strategy<Value = T>` compile unchanged.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred` (regenerates, bounded attempts).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
    }
}

/// A type-erased strategy (`Strategy::boxed`).
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start() as i128, *self.end() as i128);
                let span = (e - s + 1) as u128;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (s + hi) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// The whole-domain strategy for `T` (`any::<u32>()` etc).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Vec of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// BTreeSet of `element` values with target size drawn from `size`
    /// (duplicates are retried a bounded number of times, like proptest).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.clone().generate(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < 8 * target + 16 {
                attempts += 1;
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Everything the tests import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Locates `<test source>.proptest-regressions` next to the test file.
///
/// `file` is `file!()`, which rustc records relative to the directory
/// cargo invoked it from (the *workspace* root), while the test binary
/// runs with the *package* root as cwd — so walk up from the package's
/// manifest dir until the source file resolves.
fn regression_path(manifest_dir: &str, file: &str) -> Option<std::path::PathBuf> {
    let mut dir = Some(std::path::Path::new(manifest_dir));
    while let Some(d) = dir {
        let src = d.join(file);
        if src.is_file() {
            return Some(src.with_extension("proptest-regressions"));
        }
        dir = d.parent();
    }
    None
}

/// Parses the persisted `seed <u64> [# tag]` lines relevant to `name`
/// (an untagged line applies to every test sharing the source file).
/// Real-proptest `cc <hash>` lines encode shrunk values this stand-in
/// cannot decode; they are skipped.
fn persisted_seeds(path: &std::path::Path, name: &str) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("seed ") else {
            continue;
        };
        let (num, tag) = match rest.split_once('#') {
            Some((n, t)) => (n.trim(), Some(t.trim())),
            None => (rest.trim(), None),
        };
        if tag.is_some_and(|t| !t.is_empty() && t != name) {
            continue;
        }
        if let Ok(seed) = num.parse::<u64>() {
            seeds.push(seed);
        }
    }
    seeds
}

const REGRESSION_HEADER: &str = "\
# Seeds for failure cases the (vendored) proptest stand-in has caught.
# Each `seed <n> # <test>` line is replayed before any novel cases the
# next time that test runs; check this file in to source control so CI
# replays it too. (`cc <hash>` lines written by real proptest encode
# shrunk values and cannot be replayed by the stand-in; they are kept
# but skipped.)
";

/// Appends `seed <n> # <name>` to `path` (creating it with the header),
/// unless an identical line is already present.
fn persist_seed(path: &std::path::Path, name: &str, seed: u64) {
    use std::io::Write as _;
    let line = format!("seed {seed} # {name}");
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    if existing.lines().any(|l| l.trim() == line) {
        return;
    }
    let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) else {
        return; // read-only checkout: the panic message still carries the seed
    };
    let mut out = String::new();
    if existing.is_empty() {
        out.push_str(REGRESSION_HEADER);
    }
    out.push_str(&line);
    out.push('\n');
    let _ = f.write_all(out.as_bytes());
}

/// Drives one property: persisted regression seeds first, then `cases`
/// iterations with per-case deterministic seeds derived from the test
/// name. Called by the [`proptest!`] expansion, which passes `file!()`
/// and the test crate's `CARGO_MANIFEST_DIR` so failures persist to the
/// sibling `.proptest-regressions` file.
pub fn run_prop_test<F>(
    config: ProptestConfig,
    name: &str,
    file: &str,
    manifest_dir: &str,
    mut body: F,
) where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases)
        .max(1);
    // A directed replay runs exactly one case and persists nothing.
    if let Some(seed) = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        let mut rng = TestRng::from_seed(seed);
        if let Err(e) = body(&mut rng) {
            panic!("proptest {name} failed under PROPTEST_SEED={seed}: {e}");
        }
        return;
    }
    let reg_path = regression_path(manifest_dir, file);
    if let Some(path) = &reg_path {
        for seed in persisted_seeds(path, name) {
            let mut rng = TestRng::from_seed(seed);
            if let Err(e) = body(&mut rng) {
                panic!(
                    "proptest {name} failed replaying regression seed {seed} from {}: {e}",
                    path.display()
                );
            }
        }
    }
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    for case in 0..cases {
        let seed = h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::from_seed(seed);
        if let Err(e) = body(&mut rng) {
            let persisted = match &reg_path {
                Some(path) => {
                    persist_seed(path, name, seed);
                    format!("; seed persisted to {}", path.display())
                }
                None => String::new(),
            };
            panic!(
                "proptest case {case}/{cases} of {name} failed (reproduce with PROPTEST_SEED={seed}{persisted}): {e}"
            );
        }
    }
}

/// The `proptest!` macro: wraps each `fn name(pat in strategy, ..) { .. }`
/// into a `#[test]` running [`run_prop_test`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. The leading attribute
/// capture also swallows the user's `#[test]`, which is re-emitted.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$attr:meta])* fn $name:ident( $($args:tt)* ) $body:block )* ) => {
        $(
            $(#[$attr])*
            fn $name() {
                $crate::run_prop_test(
                    $cfg,
                    stringify!($name),
                    file!(),
                    env!("CARGO_MANIFEST_DIR"),
                    |__proptest_rng| {
                        $crate::__proptest_bind!(__proptest_rng, $($args)*);
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Internal: binds `pat in strategy` argument lists case by case.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, mut $x:ident in $s:expr) => {
        #[allow(unused_mut)]
        let mut $x = $crate::Strategy::generate(&($s), $rng);
    };
    ($rng:ident, mut $x:ident in $s:expr, $($rest:tt)*) => {
        #[allow(unused_mut)]
        let mut $x = $crate::Strategy::generate(&($s), $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $x:ident in $s:expr) => {
        let $x = $crate::Strategy::generate(&($s), $rng);
    };
    ($rng:ident, $x:ident in $s:expr, $($rest:tt)*) => {
        let $x = $crate::Strategy::generate(&($s), $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

/// `assert!` returning a [`TestCaseError`] instead of panicking, so the
/// runner can report the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)
            )));
        }
    };
}

/// `assert_eq!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)*), l, r
            )));
        }
    }};
}

/// `assert_ne!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
}

#[cfg(test)]
mod regression_tests {
    use super::{persist_seed, persisted_seeds, regression_path};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn scratch(name: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "proptest-regr-{}-{}-{name}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parses_seed_lines_and_skips_cc_lines() {
        let dir = scratch("parse");
        let path = dir.join("t.proptest-regressions");
        std::fs::write(
            &path,
            "# header\n\
             cc 859a6c6ecf28269a3ad3a965e1cbf75186c9dbd8d7454317e71a9fcc840bbe16 # shrinks to x\n\
             seed 42 # my_test\n\
             seed 7 # other_test\n\
             seed 99\n\
             seed nonsense # my_test\n",
        )
        .unwrap();
        // Tagged lines filter by test name; untagged apply to everyone.
        assert_eq!(persisted_seeds(&path, "my_test"), vec![42, 99]);
        assert_eq!(persisted_seeds(&path, "other_test"), vec![7, 99]);
        assert_eq!(persisted_seeds(&path, "third_test"), vec![99]);
        assert!(persisted_seeds(&dir.join("absent"), "my_test").is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persist_creates_header_and_dedupes() {
        let dir = scratch("persist");
        let path = dir.join("t.proptest-regressions");
        persist_seed(&path, "my_test", 42);
        persist_seed(&path, "my_test", 42); // duplicate: no second line
        persist_seed(&path, "my_test", 7);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("# Seeds for failure cases"));
        assert_eq!(text.matches("seed 42 # my_test").count(), 1);
        assert!(text.contains("seed 7 # my_test"));
        assert_eq!(persisted_seeds(&path, "my_test"), vec![42, 7]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn regression_path_recovers_workspace_root() {
        // Lay out <root>/crates/pkg (the manifest dir cargo hands the
        // test binary) with the source recorded workspace-relative, the
        // way `file!()` records it.
        let root = scratch("path");
        let pkg = root.join("crates").join("pkg");
        let tests = pkg.join("tests");
        std::fs::create_dir_all(&tests).unwrap();
        std::fs::write(tests.join("prop.rs"), "// src\n").unwrap();
        let found = regression_path(pkg.to_str().unwrap(), "crates/pkg/tests/prop.rs")
            .expect("upward walk must find the source file");
        assert_eq!(found, root.join("crates/pkg/tests/prop.proptest-regressions"));
        assert!(regression_path(pkg.to_str().unwrap(), "no/such/file.rs").is_none());
        std::fs::remove_dir_all(&root).unwrap();
    }
}
