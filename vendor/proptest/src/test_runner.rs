//! Runner configuration, case errors, and the deterministic test RNG.

use std::fmt;

/// Runner configuration (the `cases` subset).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed test case (carries the assertion message).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    pub(crate) message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Proptest-compatible alias of [`TestCaseError::fail`].
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-case RNG (xoshiro256++ seeded via SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Builds the RNG from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
