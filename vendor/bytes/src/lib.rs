//! Offline stand-in for `bytes`: exactly the `BytesMut`/`BufMut` subset the
//! FPMDB binary writer uses (`with_capacity`, little-endian integer puts,
//! deref to `&[u8]`), backed by a plain `Vec<u8>`.

use std::ops::{Deref, DerefMut};

/// A growable byte buffer (a thin wrapper over `Vec<u8>`).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// Write-side buffer operations (the `bytes::BufMut` subset in use).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u32` little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_puts() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u64_le(0x0102_0304_0506_0708);
        b.put_u32_le(0xAABB_CCDD);
        b.put_u8(0x7F);
        assert_eq!(
            &b[..],
            &[8, 7, 6, 5, 4, 3, 2, 1, 0xDD, 0xCC, 0xBB, 0xAA, 0x7F]
        );
        assert_eq!(b.len(), 13);
        assert!(!b.is_empty());
    }
}
