//! Offline stand-in for `serde`.
//!
//! The workspace tags types with `#[derive(Serialize, Deserialize)]` as API
//! decoration; nothing in the tree actually serializes (there is no format
//! crate). Since the build environment cannot reach crates.io, this stub
//! keeps the source compiling unchanged: the traits exist, every type
//! implements them via blanket impls, and the derive macros (re-exported
//! from the sibling `serde_derive` stub) expand to nothing.

/// Marker for serializable types. Blanket-implemented for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types. Blanket-implemented for every type.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker mirroring serde's owned-deserialization helper trait.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
