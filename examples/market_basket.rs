//! Market-basket analysis on IBM Quest synthetic data — the workload the
//! frequent-pattern-mining literature was born from: generate a
//! `T10I4D…` retail-like database, mine it, and derive association rules
//! from the frequent itemsets.
//!
//! ```sh
//! cargo run --release --example market_basket
//! ```

use also_fpm::fpm::{CollectSink, ItemsetCount};
use also_fpm::quest::{quest_generate, QuestParams};
use std::collections::HashMap;

fn main() {
    let params = QuestParams {
        n_transactions: 20_000,
        avg_transaction_len: 10.0,
        avg_pattern_len: 4.0,
        n_items: 500,
        n_patterns: 300,
        ..QuestParams::default()
    };
    let db = quest_generate(&params);
    let minsup = 200; // 1% of transactions
    println!(
        "generated {} ({} transactions, {} items, mean length {:.1})",
        params.name(),
        db.len(),
        db.n_items(),
        db.mean_len()
    );

    let mut sink = CollectSink::default();
    also_fpm::lcm::mine(&db, minsup, &also_fpm::lcm::LcmConfig::all(), &mut sink);
    let patterns = sink.patterns;
    println!("{} frequent itemsets at 1% support\n", patterns.len());

    // Derive association rules  A → b  with confidence = sup(A ∪ b) / sup(A).
    let support: HashMap<&[u32], u64> = patterns
        .iter()
        .map(|p| (p.items.as_slice(), p.support))
        .collect();
    let mut rules: Vec<(Vec<u32>, u32, f64, u64)> = Vec::new();
    for p in &patterns {
        if p.items.len() < 2 {
            continue;
        }
        for (i, &conseq) in p.items.iter().enumerate() {
            let mut antecedent = p.items.clone();
            antecedent.remove(i);
            if let Some(&sa) = support.get(antecedent.as_slice()) {
                let conf = p.support as f64 / sa as f64;
                if conf >= 0.8 {
                    rules.push((antecedent, conseq, conf, p.support));
                }
            }
        }
    }
    rules.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("no NaN"));
    println!("top association rules (confidence ≥ 0.8):");
    for (ante, conseq, conf, sup) in rules.iter().take(15) {
        println!("  {ante:?} → {conseq}   confidence {conf:.2}, support {sup}");
    }
    if rules.is_empty() {
        println!("  (none at this threshold — lower minsup or confidence)");
    }

    // sanity: the most frequent pair really co-occurs above independence
    let pairs: Vec<&ItemsetCount> = patterns.iter().filter(|p| p.items.len() == 2).collect();
    if let Some(best) = pairs.iter().max_by_key(|p| p.support) {
        let s0 = support[&best.items[..1]] as f64;
        let s1 = support[&[best.items[1]][..]] as f64;
        let lift = best.support as f64 * db.len() as f64 / (s0 * s1);
        println!(
            "\nstrongest pair {:?}: support {}, lift {:.2}",
            best.items, best.support, lift
        );
    }
}
