//! Parallel mining demo: the ALSO patterns compose with thread-level
//! parallelism (DESIGN.md §7) because the lattice below different
//! first items is disjoint — workers share only the read-only root
//! projection.
//!
//! ```sh
//! cargo run --release --example parallel_mining [threads]
//! ```

use also_fpm::fpm::CollectSink;
use also_fpm::lcm::{self, LcmConfig};
use also_fpm::quest::{Dataset, Scale};
use std::time::Instant;

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
        });
    let db = Dataset::Ds1.generate(Scale::Smoke);
    let minsup = Dataset::Ds1.support(Scale::Smoke);
    println!(
        "mining {} transactions at minsup {minsup} with {threads} worker(s)",
        db.len()
    );

    let t = Instant::now();
    let mut sink = CollectSink::default();
    lcm::mine(&db, minsup, &LcmConfig::all(), &mut sink);
    let sequential = also_fpm::fpm::types::canonicalize(sink.patterns);
    let t_seq = t.elapsed().as_secs_f64();
    println!("sequential: {} patterns in {t_seq:.3}s", sequential.len());

    let t = Instant::now();
    let parallel = lcm::mine_parallel(&db, minsup, &LcmConfig::all(), threads);
    let t_par = t.elapsed().as_secs_f64();
    println!(
        "parallel:   {} patterns in {t_par:.3}s ({:.2}× on {threads} threads)",
        parallel.len(),
        t_seq / t_par
    );
    assert_eq!(sequential, parallel, "results must be identical");
    println!("results identical — the subtree decomposition is exact");
}
