//! Parallel mining demo: the ALSO patterns compose with thread-level
//! parallelism (DESIGN.md §7) because the lattice below different
//! first items is disjoint — workers share only the read-only root
//! structure (LCM: projection; Eclat: vertical bit matrix; FP-Growth:
//! FP-tree) and all three kernels run on the same `fpm-par`
//! work-stealing scheduler, driven through one [`MinePlan`].
//!
//! ```sh
//! cargo run --release --example parallel_mining [threads]
//! ```
//!
//! [`MinePlan`]: also_fpm::exec::MinePlan

use also_fpm::exec::MinePlan;
use also_fpm::fpm::{CollectSink, ItemsetCount, TransactionDb};
use also_fpm::par::ParConfig;
use also_fpm::quest::{Dataset, Scale};
use also_fpm::{eclat, fpgrowth, lcm};
use std::time::Instant;

fn report(
    name: &str,
    label: &str,
    db: &TransactionDb,
    minsup: u64,
    par_cfg: &ParConfig,
    serial: impl Fn(&TransactionDb, u64, &mut CollectSink),
) {
    let t = Instant::now();
    let mut sink = CollectSink::default();
    serial(db, minsup, &mut sink);
    let expect = also_fpm::fpm::types::canonicalize(sink.patterns);
    let t_seq = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let got: Vec<ItemsetCount> = {
        let mut sink = CollectSink::default();
        MinePlan::by_label(label, minsup)
            .expect("known kernel")
            .par_config(*par_cfg)
            .execute(db, &mut sink);
        also_fpm::fpm::types::canonicalize(sink.patterns)
    };
    let t_par = t.elapsed().as_secs_f64();

    assert_eq!(expect, got, "{name}: parallel must match serial");
    println!(
        "{name:10} {:6} patterns  serial {t_seq:.3}s  parallel {t_par:.3}s  ({:.2}×)",
        got.len(),
        t_seq / t_par.max(1e-9),
    );
}

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0); // 0 = auto-detect
    let par_cfg = ParConfig::with_threads(threads);
    let db = Dataset::Ds1.generate(Scale::Smoke);
    let minsup = Dataset::Ds1.support(Scale::Smoke);
    println!(
        "mining {} transactions at minsup {minsup} with {} worker(s)",
        db.len(),
        par_cfg.effective_threads(usize::MAX),
    );

    report("lcm", "lcm", &db, minsup, &par_cfg, |db, ms, sink| {
        lcm::mine(db, ms, &lcm::LcmConfig::all(), sink);
    });
    report("eclat", "eclat", &db, minsup, &par_cfg, |db, ms, sink| {
        eclat::mine(db, ms, &eclat::EclatConfig::all(), sink);
    });
    report("fp-growth", "fpgrowth", &db, minsup, &par_cfg, |db, ms, sink| {
        fpgrowth::mine(db, ms, &fpgrowth::FpConfig::all(), sink);
    });
    println!("all three kernels: parallel results identical to serial");
}
