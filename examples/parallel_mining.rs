//! Parallel mining demo: the ALSO patterns compose with thread-level
//! parallelism (DESIGN.md §7) because the lattice below different
//! first items is disjoint — workers share only the read-only root
//! structure (LCM: projection; Eclat: vertical bit matrix; FP-Growth:
//! FP-tree) and all three kernels run on the same `fpm-par`
//! work-stealing scheduler.
//!
//! ```sh
//! cargo run --release --example parallel_mining [threads]
//! ```

use also_fpm::fpm::{CollectSink, ItemsetCount, TransactionDb};
use also_fpm::par::ParConfig;
use also_fpm::quest::{Dataset, Scale};
use also_fpm::{eclat, fpgrowth, lcm};
use std::time::Instant;

fn report(
    name: &str,
    db: &TransactionDb,
    minsup: u64,
    par_cfg: &ParConfig,
    serial: impl Fn(&TransactionDb, u64, &mut CollectSink),
    parallel: impl Fn(&TransactionDb, u64, &ParConfig) -> Vec<ItemsetCount>,
) {
    let t = Instant::now();
    let mut sink = CollectSink::default();
    serial(db, minsup, &mut sink);
    let expect = also_fpm::fpm::types::canonicalize(sink.patterns);
    let t_seq = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let got = parallel(db, minsup, par_cfg);
    let t_par = t.elapsed().as_secs_f64();

    assert_eq!(expect, got, "{name}: parallel must match serial");
    println!(
        "{name:10} {:6} patterns  serial {t_seq:.3}s  parallel {t_par:.3}s  ({:.2}×)",
        got.len(),
        t_seq / t_par.max(1e-9),
    );
}

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0); // 0 = auto-detect
    let par_cfg = ParConfig::with_threads(threads);
    let db = Dataset::Ds1.generate(Scale::Smoke);
    let minsup = Dataset::Ds1.support(Scale::Smoke);
    println!(
        "mining {} transactions at minsup {minsup} with {} worker(s)",
        db.len(),
        par_cfg.effective_threads(usize::MAX),
    );

    report(
        "lcm",
        &db,
        minsup,
        &par_cfg,
        |db, ms, sink| {
            lcm::mine(db, ms, &lcm::LcmConfig::all(), sink);
        },
        |db, ms, par| lcm::mine_parallel(db, ms, &lcm::LcmConfig::all(), par),
    );
    report(
        "eclat",
        &db,
        minsup,
        &par_cfg,
        |db, ms, sink| {
            eclat::mine(db, ms, &eclat::EclatConfig::all(), sink);
        },
        |db, ms, par| eclat::mine_parallel(db, ms, &eclat::EclatConfig::all(), par),
    );
    report(
        "fp-growth",
        &db,
        minsup,
        &par_cfg,
        |db, ms, sink| {
            fpgrowth::mine(db, ms, &fpgrowth::FpConfig::all(), sink);
        },
        |db, ms, par| fpgrowth::mine_parallel(db, ms, &fpgrowth::FpConfig::all(), par),
    );
    println!("all three kernels: parallel results identical to serial");
}
