//! Representation lab: the paper's Feature 1/Feature 2 design space
//! (§3.3) measured live — dense bit matrix vs sparse tid-lists vs
//! diffsets across inputs of very different density, plus what the
//! automatic chooser picks.
//!
//! ```sh
//! cargo run --release --example representation_lab
//! ```

use also_fpm::eclat::tidlist::{self, SparseRepr};
use also_fpm::eclat::{self, EclatConfig};
use also_fpm::fpm::{CountSink, TransactionDb};
use also_fpm::quest;
use std::time::Instant;

fn bench(label: &str, db: &TransactionDb, minsup: u64) {
    let ranked = also_fpm::fpm::remap(db, minsup);
    let nnz: u64 = ranked.transactions.iter().map(|t| t.len() as u64).sum();
    let density = if ranked.transactions.is_empty() {
        0.0
    } else {
        nnz as f64 / (ranked.transactions.len() as f64 * ranked.n_ranks().max(1) as f64)
    };
    println!(
        "== {label}: {} transactions, {} frequent items, density {density:.4} ==",
        ranked.transactions.len(),
        ranked.n_ranks()
    );

    let t = Instant::now();
    let mut s = CountSink::default();
    eclat::mine(db, minsup, &EclatConfig::all(), &mut s);
    let bits_time = t.elapsed().as_secs_f64();
    println!("   bit matrix     {:>8} patterns  {bits_time:.3}s", s.count);

    let t = Instant::now();
    let mut s2 = CountSink::default();
    let st = tidlist::mine(db, minsup, SparseRepr::TidLists, &mut s2);
    println!(
        "   tid-lists      {:>8} patterns  {:.3}s  ({} elements moved)",
        s2.count,
        t.elapsed().as_secs_f64(),
        st.elements_out
    );

    let t = Instant::now();
    let mut s3 = CountSink::default();
    let st = tidlist::mine(db, minsup, SparseRepr::Diffsets, &mut s3);
    println!(
        "   diffsets       {:>8} patterns  {:.3}s  ({} elements moved)",
        s3.count,
        t.elapsed().as_secs_f64(),
        st.elements_out
    );

    let t = Instant::now();
    let mut s4 = CountSink::default();
    let st = tidlist::mine(db, minsup, SparseRepr::Hybrid, &mut s4);
    println!(
        "   hybrid chunks  {:>8} patterns  {:.3}s  ({} elements moved)",
        s4.count,
        t.elapsed().as_secs_f64(),
        st.elements_out
    );
    assert_eq!(s.count, s2.count);
    assert_eq!(s.count, s3.count);
    assert_eq!(s.count, s4.count);

    let chosen = tidlist::mine_auto(db, minsup, &mut CountSink::default());
    println!("   chooser picks: {chosen:?}\n");
}

fn main() {
    // Dense end: mushroom-like attribute-value data at 30% support.
    let mushroom = quest::dense::generate(&quest::dense::DenseParams::mushroom_like());
    let sup = (mushroom.len() as u64) * 3 / 10;
    bench("mushroom-like (dense)", &mushroom, sup);

    // Middle: Quest market baskets at 1%.
    let basket = quest::quest_generate(&quest::QuestParams {
        n_transactions: 20_000,
        avg_transaction_len: 10.0,
        avg_pattern_len: 4.0,
        n_items: 500,
        n_patterns: 300,
        ..quest::QuestParams::default()
    });
    bench("market baskets (medium)", &basket, 200);

    // Sparse end: AP-like newswire at a low absolute support.
    let ap = quest::ap::generate(&quest::ap::ApParams {
        n_transactions: 30_000,
        n_items: 8_000,
        ..quest::ap::ApParams::default()
    });
    bench("AP-like (sparse)", &ap, 60);

    println!("Reading: diffsets move the least data on the dense end; plain");
    println!("tid-lists win once density drops below the bit-per-cell break-even");
    println!("(~1/32); the chooser flips representation on exactly that boundary.");
    println!("Hybrid chunks split the same decision per 2^16-tid chunk: u16");
    println!("arrays where sparse, bitmaps where dense, runs where clustered");
    println!("(DESIGN.md §16) — same patterns, about half the vertical bytes.");
}
