//! Tuning lab: measure what each ALSO pattern buys on your machine.
//!
//! Runs every named variant of every kernel on one dataset and prints a
//! Figure 8-style speedup cluster, then asks the input-profile advisor
//! what it would have picked.
//!
//! ```sh
//! cargo run --release --example tuning_lab            # DS1, smoke scale
//! cargo run --release --example tuning_lab ds3 ci     # pick dataset/scale
//! ```

use also_fpm::also::advisor::{advise, AdvisorConfig};
use also_fpm::also::catalog::Kernel;
use also_fpm::fpm::CountSink;
use also_fpm::quest::{Dataset, Scale};
use std::time::Instant;

fn time<R>(mut f: impl FnMut() -> R) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dataset = args
        .first()
        .and_then(|s| Dataset::by_label(s))
        .unwrap_or(Dataset::Ds1);
    let scale = args
        .get(1)
        .and_then(|s| Scale::by_label(s))
        .unwrap_or(Scale::Smoke);

    let db = dataset.generate(scale);
    let minsup = dataset.support(scale);
    println!(
        "{} ({}) at {scale:?} scale: {} transactions, minsup {minsup}\n",
        dataset.label(),
        dataset.name(),
        db.len()
    );

    println!("== LCM ==");
    let mut base = 0.0;
    for (name, cfg) in also_fpm::lcm::variants() {
        let t = time(|| {
            let mut s = CountSink::default();
            also_fpm::lcm::mine(&db, minsup, &cfg, &mut s);
            s.count
        });
        if name == "base" {
            base = t;
            println!("  {name:<8} {t:.4}s (baseline)");
        } else {
            println!("  {name:<8} {t:.4}s  → {:.2}× speedup", base / t);
        }
    }

    println!("== Eclat ==");
    for (name, cfg) in also_fpm::eclat::variants() {
        let t = time(|| {
            let mut s = CountSink::default();
            also_fpm::eclat::mine(&db, minsup, &cfg, &mut s);
            s.count
        });
        if name == "base" {
            base = t;
            println!("  {name:<8} {t:.4}s (baseline)");
        } else {
            println!("  {name:<8} {t:.4}s  → {:.2}× speedup", base / t);
        }
    }

    println!("== FP-Growth ==");
    for (name, cfg) in also_fpm::fpgrowth::variants() {
        let t = time(|| {
            let mut s = CountSink::default();
            also_fpm::fpgrowth::mine(&db, minsup, &cfg, &mut s);
            s.count
        });
        if name == "base" {
            base = t;
            println!("  {name:<8} {t:.4}s (baseline)");
        } else {
            println!("  {name:<8} {t:.4}s  → {:.2}× speedup", base / t);
        }
    }

    // What would the advisor have recommended?
    let profile = also_fpm::fpm::metrics::profile(&db, minsup);
    println!(
        "\ninput profile: density {:.5}, scatter {:.3}, mean ranked length {:.1}",
        profile.density, profile.scatter, profile.mean_len
    );
    for k in [Kernel::Lcm, Kernel::Eclat, Kernel::FpGrowth] {
        let picks = advise(&profile, k, &AdvisorConfig::default());
        let names: Vec<&str> = picks.iter().map(|p| p.name()).collect();
        println!("advisor for {:<10}: {}", k.name(), names.join(", "));
    }
}
