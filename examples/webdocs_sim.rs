//! Text-corpus mining on the WebDocs and AP stand-ins (DS3/DS4): the two
//! "real-data" workloads of the paper's Table 6, with the input-profile
//! analysis that explains why the same patterns behave so differently on
//! them.
//!
//! ```sh
//! cargo run --release --example webdocs_sim
//! ```

use also_fpm::fpm::{CountSink, TransactionDb};
use also_fpm::quest::{Dataset, Scale};
use std::time::Instant;

/// A named closure that mines and returns the pattern count.
type Runner<'a> = (&'a str, Box<dyn Fn() -> u64 + 'a>);

fn mine_both(label: &str, db: &TransactionDb, minsup: u64) {
    println!("== {label}: {} transactions, mean length {:.1}, minsup {minsup} ==",
        db.len(), db.mean_len());
    let profile = also_fpm::fpm::metrics::profile(db, minsup);
    println!(
        "   profile: density {:.5}, scatter {:.3}, {} frequent items",
        profile.density, profile.scatter, profile.n_items
    );

    let runners: Vec<Runner> = vec![
        (
            "eclat/all",
            Box::new(|| {
                let mut s = CountSink::default();
                also_fpm::eclat::mine(db, minsup, &also_fpm::eclat::EclatConfig::all(), &mut s);
                s.count
            }),
        ),
        (
            "lcm/all",
            Box::new(|| {
                let mut s = CountSink::default();
                also_fpm::lcm::mine(db, minsup, &also_fpm::lcm::LcmConfig::all(), &mut s);
                s.count
            }),
        ),
        (
            "fpgrowth/all",
            Box::new(|| {
                let mut s = CountSink::default();
                also_fpm::fpgrowth::mine(db, minsup, &also_fpm::fpgrowth::FpConfig::all(), &mut s);
                s.count
            }),
        ),
    ];
    for (kernel, run) in &runners {
        let t = Instant::now();
        let n = run();
        println!("   {kernel:<14} {n:>8} patterns in {:.3}s", t.elapsed().as_secs_f64());
    }
    println!();
}

fn main() {
    let scale = Scale::Smoke;
    let ds3 = Dataset::Ds3.generate(scale);
    mine_both("DS3 (WebDocs-like: dense, topic-clustered)", &ds3, Dataset::Ds3.support(scale));
    let ds4 = Dataset::Ds4.generate(scale);
    mine_both("DS4 (AP-like: sparse, scattered)", &ds4, Dataset::Ds4.support(scale));

    println!("The paper's §4.4 reading: on the dense, clustered DS3 the vertical");
    println!("bit-matrix (Eclat) shines and tiling finds reuse; on the sparse,");
    println!("scattered DS4 tiling adds nothing and lexicographic preprocessing");
    println!("struggles to pay for itself. Compare the profiles above.");
}
