//! CPI profiling on the simulated 2006 machines — the Figure 2
//! experience through the public API: run each kernel against the
//! trace-driven cache simulator and print CPI + miss-rate reports for
//! both Table 5 platforms.
//!
//! ```sh
//! cargo run --release --example cpi_profile
//! ```

use also_fpm::fpm::CountSink;
use also_fpm::memsim::{CacheProbe, Machine, MemReport};
use also_fpm::quest::{Dataset, Scale};

fn main() {
    let dataset = Dataset::Ds1;
    let scale = Scale::Smoke;
    let db = dataset.generate(scale);
    let minsup = dataset.support(scale);
    println!(
        "profiling on {} ({} transactions, minsup {minsup})\n",
        dataset.name(),
        db.len()
    );

    for machine in [Machine::m1(), Machine::m2()] {
        println!("--- {} ---", machine.name);
        println!("{}", MemReport::header());

        // Baseline kernels, whole-run CPI (the paper's Figure 2 isolates
        // the hot functions; `repro fig2` does that — this example shows
        // the whole-kernel view).
        let mut p = CacheProbe::new(machine);
        let mut s = CountSink::default();
        also_fpm::lcm::mine_probed(&db, minsup, &also_fpm::lcm::LcmConfig::baseline(), &mut p, &mut s);
        let r = p.report("LCM (baseline)");
        println!("{}{}", r.row(), bound_tag(&r));

        let mut p = CacheProbe::new(machine);
        let mut s = CountSink::default();
        also_fpm::eclat::mine_probed(
            &db,
            minsup,
            &also_fpm::eclat::EclatConfig::baseline(),
            &mut p,
            &mut s,
        );
        let r = p.report("Eclat (baseline)");
        println!("{}{}", r.row(), bound_tag(&r));

        let mut p = CacheProbe::new(machine);
        let mut s = CountSink::default();
        also_fpm::fpgrowth::mine_probed(
            &db,
            minsup,
            &also_fpm::fpgrowth::FpConfig::baseline(),
            &mut p,
            &mut s,
        );
        let r = p.report("FP-Growth (baseline)");
        println!("{}{}", r.row(), bound_tag(&r));

        // …and the tuned versions, to see the optimization in the miss rates.
        let mut p = CacheProbe::new(machine);
        let mut s = CountSink::default();
        also_fpm::lcm::mine_probed(&db, minsup, &also_fpm::lcm::LcmConfig::all(), &mut p, &mut s);
        println!("{}", p.report("LCM (all patterns)").row());

        let mut p = CacheProbe::new(machine);
        let mut s = CountSink::default();
        also_fpm::fpgrowth::mine_probed(
            &db,
            minsup,
            &also_fpm::fpgrowth::FpConfig::all(),
            &mut p,
            &mut s,
        );
        println!("{}", p.report("FP-Growth (all patterns)").row());
        println!();
    }
    println!("(optimum CPI is 0.33 — three retired µops per cycle)");
}

fn bound_tag(r: &MemReport) -> &'static str {
    if r.is_memory_bound() {
        "   <- memory bound"
    } else {
        "   <- computation bound"
    }
}
