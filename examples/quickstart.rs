//! Quickstart: mine a small transactional database with every kernel.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use also_fpm::fpm::{CollectSink, TransactionDb};

fn main() {
    // A grocery-flavoured toy database (items are just ids; pretend
    // 0 = milk, 1 = bread, 2 = butter, 3 = beer, 4 = diapers).
    let db = TransactionDb::from_transactions(vec![
        vec![0, 1, 2],
        vec![0, 1],
        vec![1, 2],
        vec![3, 4],
        vec![0, 1, 2, 3],
        vec![1, 2],
        vec![3, 4],
        vec![0, 1, 2],
    ]);
    let minsup = 3;

    println!(
        "{} transactions over {} items, minsup {minsup}\n",
        db.len(),
        db.n_items()
    );

    // LCM with every applicable ALSO pattern enabled.
    let mut sink = CollectSink::default();
    also_fpm::lcm::mine(&db, minsup, &also_fpm::lcm::LcmConfig::all(), &mut sink);
    let patterns = also_fpm::fpm::types::canonicalize(sink.patterns);
    println!("LCM (all patterns) found {} frequent itemsets:", patterns.len());
    for p in &patterns {
        println!("  {:?} support {}", p.items, p.support);
    }

    // The other kernels return exactly the same set — that's the
    // workspace's central invariant.
    let mut eclat_sink = CollectSink::default();
    also_fpm::eclat::mine(
        &db,
        minsup,
        &also_fpm::eclat::EclatConfig::all(),
        &mut eclat_sink,
    );
    let mut fpg_sink = CollectSink::default();
    also_fpm::fpgrowth::mine(
        &db,
        minsup,
        &also_fpm::fpgrowth::FpConfig::all(),
        &mut fpg_sink,
    );
    assert_eq!(
        patterns,
        also_fpm::fpm::types::canonicalize(eclat_sink.patterns)
    );
    assert_eq!(
        patterns,
        also_fpm::fpm::types::canonicalize(fpg_sink.patterns)
    );
    println!("\nEclat and FP-Growth agree on all {} patterns.", patterns.len());
}
