#!/usr/bin/env bash
# Regenerates every artifact recorded in EXPERIMENTS.md.
# Usage: scripts/reproduce.sh [smoke|ci|full]   (default: smoke)
set -euo pipefail
cd "$(dirname "$0")/.."
SCALE="${1:-smoke}"

echo "== build =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace 2>&1 | tee test_output.txt

echo "== tables & figures (native + simulated) =="
./target/release/repro all --scale "$SCALE" | tee "repro_${SCALE}.txt"
./target/release/repro fig8 --machine m1 --scale "$SCALE" | tee "fig8_m1_${SCALE}.txt"
./target/release/repro fig8 --machine m2 --scale "$SCALE" | tee "fig8_m2_${SCALE}.txt"

echo "== criterion benches =="
cargo bench --workspace 2>&1 | tee bench_output.txt

echo "done — see EXPERIMENTS.md for the paper-vs-measured reading"
