//! The central correctness property of the reproduction: four
//! structurally unrelated miners (LCM's occurrence-deliver arrays,
//! Eclat's vertical bit matrix, FP-Growth's prefix tree, Apriori's
//! breadth-first join) and every ALSO-tuned variant of each must produce
//! exactly the same frequent itemsets with the same supports.

use fpm::types::canonicalize;
use fpm::{CollectSink, ItemsetCount, TransactionDb};
use proptest::prelude::*;

fn mine_lcm(db: &TransactionDb, minsup: u64, cfg: &lcm::LcmConfig) -> Vec<ItemsetCount> {
    let mut s = CollectSink::default();
    lcm::mine(db, minsup, cfg, &mut s);
    canonicalize(s.patterns)
}

fn mine_eclat(db: &TransactionDb, minsup: u64, cfg: &eclat::EclatConfig) -> Vec<ItemsetCount> {
    let mut s = CollectSink::default();
    eclat::mine(db, minsup, cfg, &mut s);
    canonicalize(s.patterns)
}

fn mine_fpg(db: &TransactionDb, minsup: u64, cfg: &fpgrowth::FpConfig) -> Vec<ItemsetCount> {
    let mut s = CollectSink::default();
    fpgrowth::mine(db, minsup, cfg, &mut s);
    canonicalize(s.patterns)
}

fn mine_apriori(db: &TransactionDb, minsup: u64) -> Vec<ItemsetCount> {
    let mut s = CollectSink::default();
    apriori::mine(db, minsup, &mut s);
    canonicalize(s.patterns)
}

fn mine_hmine(db: &TransactionDb, minsup: u64) -> Vec<ItemsetCount> {
    let mut s = CollectSink::default();
    fpm::hmine::mine(db, minsup, &mut s);
    canonicalize(s.patterns)
}

/// All kernels (tuned `all` variants) + Apriori against the brute-force
/// reference.
fn assert_all_agree(db: &TransactionDb, minsup: u64) {
    let expect = canonicalize(fpm::naive::mine(db, minsup));
    assert_eq!(mine_apriori(db, minsup), expect, "apriori");
    assert_eq!(mine_hmine(db, minsup), expect, "hmine");
    for (name, cfg) in lcm::variants() {
        assert_eq!(mine_lcm(db, minsup, &cfg), expect, "lcm/{name}");
    }
    for (name, cfg) in eclat::variants() {
        assert_eq!(mine_eclat(db, minsup, &cfg), expect, "eclat/{name}");
    }
    for (name, cfg) in fpgrowth::variants() {
        assert_eq!(mine_fpg(db, minsup, &cfg), expect, "fpgrowth/{name}");
    }
}

#[test]
fn paper_toy_database() {
    let db = TransactionDb::from_transactions(vec![
        vec![0, 2, 5],
        vec![1, 2, 5],
        vec![0, 2, 5],
        vec![3, 4],
        vec![0, 1, 2, 3, 4, 5],
    ]);
    for minsup in 1..=5 {
        assert_all_agree(&db, minsup);
    }
}

#[test]
fn pathological_shapes() {
    // all transactions identical
    assert_all_agree(
        &TransactionDb::from_transactions(vec![vec![1, 2, 3]; 20]),
        5,
    );
    // pairwise disjoint transactions
    assert_all_agree(
        &TransactionDb::from_transactions((0..10).map(|k| vec![2 * k, 2 * k + 1]).collect()),
        1,
    );
    // one long transaction among singletons
    let mut ts: Vec<Vec<u32>> = (0..10).map(|k| vec![k]).collect();
    ts.push((0..10).collect());
    assert_all_agree(&TransactionDb::from_transactions(ts), 2);
    // empty transactions mixed in
    assert_all_agree(
        &TransactionDb::from_transactions(vec![vec![], vec![1], vec![], vec![1, 2]]),
        1,
    );
}

#[test]
fn quest_generated_database() {
    let db = quest::quest_generate(&quest::QuestParams {
        n_transactions: 400,
        avg_transaction_len: 8.0,
        avg_pattern_len: 3.0,
        n_items: 40,
        n_patterns: 30,
        ..quest::QuestParams::default()
    });
    // cross-check the depth-first kernels against Apriori (naive is too
    // slow here)
    let expect = mine_apriori(&db, 20);
    assert!(expect.len() > 20, "workload must be non-trivial");
    assert_eq!(mine_hmine(&db, 20), expect, "hmine");
    for (name, cfg) in lcm::variants() {
        assert_eq!(mine_lcm(&db, 20, &cfg), expect, "lcm/{name}");
    }
    for (name, cfg) in eclat::variants() {
        assert_eq!(mine_eclat(&db, 20, &cfg), expect, "eclat/{name}");
    }
    for (name, cfg) in fpgrowth::variants() {
        assert_eq!(mine_fpg(&db, 20, &cfg), expect, "fpgrowth/{name}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random small databases: every kernel × the `base` and `all`
    /// variants agrees with the brute-force miner at a random threshold.
    #[test]
    fn random_databases(
        db in prop::collection::vec(
            prop::collection::btree_set(0u32..12, 0..7)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
            0..40),
        minsup in 1u64..6,
    ) {
        let db = TransactionDb::from_transactions(db);
        let expect = canonicalize(fpm::naive::mine(&db, minsup));
        prop_assert_eq!(mine_apriori(&db, minsup), expect.clone());
        prop_assert_eq!(mine_lcm(&db, minsup, &lcm::LcmConfig::baseline()), expect.clone());
        prop_assert_eq!(mine_lcm(&db, minsup, &lcm::LcmConfig::all()), expect.clone());
        prop_assert_eq!(mine_eclat(&db, minsup, &eclat::EclatConfig::baseline()), expect.clone());
        prop_assert_eq!(mine_eclat(&db, minsup, &eclat::EclatConfig::all()), expect.clone());
        prop_assert_eq!(mine_fpg(&db, minsup, &fpgrowth::FpConfig::baseline()), expect.clone());
        prop_assert_eq!(mine_fpg(&db, minsup, &fpgrowth::FpConfig::all()), expect);
    }

    /// Anti-monotonicity holds in every miner's output: raising the
    /// threshold yields exactly the filtered subset.
    #[test]
    fn threshold_monotone(
        db in prop::collection::vec(
            prop::collection::btree_set(0u32..10, 0..6)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
            0..30),
    ) {
        let db = TransactionDb::from_transactions(db);
        let low = mine_lcm(&db, 1, &lcm::LcmConfig::all());
        let high = mine_lcm(&db, 3, &lcm::LcmConfig::all());
        let filtered: Vec<ItemsetCount> =
            low.iter().filter(|p| p.support >= 3).cloned().collect();
        prop_assert_eq!(high, filtered);
    }
}
