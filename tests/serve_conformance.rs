//! Service-layer conformance: stopped runs emit serial-order prefixes,
//! and cache hits are byte-identical to cold runs.
//!
//! The service's central claim (DESIGN.md §10) is that *every* response
//! — complete, budget-truncated, cancelled, or deadline-cut — is a
//! contiguous prefix of the kernel's deterministic serial emission
//! order. This suite drives the claim through both [`MinePlan`]
//! execution paths (serial streaming and the work-stealing runtime)
//! for all three kernels, across every budget value, and
//! property-tests the cache-hit path end to end.

use chaos::goldens::{self, GoldenCase, PREFIX_LINES};
use exec::MinePlan;
use fpm::control::MineControl;
use fpm::{CollectSink, ItemsetCount, PatternSink, RecordSink, TransactionDb};
use par::ParConfig;
use proptest::prelude::*;
use serve::{DatasetSpec, Kernel, MineRequest, MineService, Outcome, ServeConfig};

fn toy() -> TransactionDb {
    TransactionDb::from_transactions(vec![
        vec![0, 2, 5],
        vec![1, 2, 5],
        vec![0, 2, 5],
        vec![3, 4],
        vec![0, 1, 2, 3, 4, 5],
    ])
}

/// The full serial emission sequence (not canonicalized — order is the
/// property under test).
fn serial(kernel: Kernel, db: &TransactionDb, minsup: u64) -> Vec<ItemsetCount> {
    let mut sink = CollectSink::default();
    match kernel {
        Kernel::Lcm => {
            lcm::mine(db, minsup, &lcm::LcmConfig::all(), &mut sink);
        }
        Kernel::Eclat => {
            eclat::mine(db, minsup, &eclat::EclatConfig::all(), &mut sink);
        }
        Kernel::FpGrowth => {
            fpgrowth::mine(db, minsup, &fpgrowth::FpConfig::all(), &mut sink);
        }
    }
    sink.patterns
}

fn controlled_serial(
    kernel: Kernel,
    db: &TransactionDb,
    minsup: u64,
    control: &MineControl,
) -> Vec<ItemsetCount> {
    let mut sink = CollectSink::default();
    MinePlan::kernel(kernel, minsup).execute_controlled(db, control, &mut sink);
    sink.patterns
}

fn controlled_parallel(
    kernel: Kernel,
    db: &TransactionDb,
    minsup: u64,
    control: &MineControl,
    threads: usize,
) -> (Vec<ItemsetCount>, bool) {
    let mut sink = CollectSink::default();
    let summary = MinePlan::kernel(kernel, minsup)
        .par_config(ParConfig::with_threads(threads))
        .execute_controlled(db, control, &mut sink);
    (sink.patterns, summary.complete)
}

/// Serial controlled runs under every budget value emit exactly the
/// first `budget` patterns of the serial order — for all three kernels.
#[test]
fn budget_prefixes_match_serial_order_serially() {
    let db = toy();
    for kernel in Kernel::ALL {
        let full = serial(kernel, &db, 2);
        assert!(full.len() > 4, "{}: toy must emit enough", kernel.label());
        for budget in 0..=full.len() as u64 + 2 {
            let control = MineControl::with_budget(budget);
            let got = controlled_serial(kernel, &db, 2, &control);
            let want = budget.min(full.len() as u64) as usize;
            assert_eq!(
                got,
                full[..want],
                "{} budget={budget}: must be the exact serial prefix",
                kernel.label()
            );
        }
    }
}

/// The same property through the work-stealing parallel path: whatever
/// a tripped run merges is a contiguous serial-order prefix.
#[test]
fn parallel_cut_output_is_a_serial_prefix() {
    let db = toy();
    for kernel in Kernel::ALL {
        let full = serial(kernel, &db, 2);
        for threads in [1usize, 2, 3, 7] {
            for budget in [0u64, 1, 3, 5, full.len() as u64, full.len() as u64 + 5] {
                let control = MineControl::with_budget(budget);
                let (got, complete) = controlled_parallel(kernel, &db, 2, &control, threads);
                assert!(
                    got.len() as u64 <= budget,
                    "{} threads={threads} budget={budget}: over-delivered",
                    kernel.label()
                );
                assert_eq!(
                    got,
                    full[..got.len()],
                    "{} threads={threads} budget={budget}: not a serial prefix",
                    kernel.label()
                );
                if budget > full.len() as u64 {
                    assert!(complete, "{}: nothing tripped", kernel.label());
                    assert_eq!(got, full);
                }
            }
        }
    }
}

/// Pre-cancelled controls yield the empty prefix everywhere.
#[test]
fn cancelled_before_start_emits_nothing() {
    let db = toy();
    for kernel in Kernel::ALL {
        let control = MineControl::unlimited();
        control.cancel();
        assert!(controlled_serial(kernel, &db, 2, &control).is_empty());
        let (got, complete) = controlled_parallel(kernel, &db, 2, &control, 3);
        assert!(got.is_empty(), "{}", kernel.label());
        assert!(!complete);
    }
}

/// Renders response patterns in the canonical `RecordSink` line format,
/// so service output can be diffed against the committed corpus bytes.
fn render(patterns: &[ItemsetCount]) -> Vec<u8> {
    let mut sink = RecordSink::default();
    for p in patterns {
        sink.emit(&p.items, p.support);
    }
    sink.bytes
}

/// End-to-end against the committed golden corpus (`tests/goldens/`,
/// see `chaos::goldens`): a cold full response digests to the committed
/// reference, and a warm budget-limited request — served from cache —
/// reproduces the committed `.prefix` file byte-for-byte. The serial
/// reference is never recomputed here; the corpus is the oracle.
#[test]
fn service_responses_match_the_committed_corpus() {
    let digests = goldens::load_digests();
    let svc = MineService::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let spec = DatasetSpec::Named {
        dataset: quest::Dataset::Ds1,
        scale: quest::Scale::Smoke,
    };
    for kernel in Kernel::ALL {
        let case = GoldenCase::smoke(kernel);
        let want = digests
            .get(&case.stem())
            .unwrap_or_else(|| panic!("{} missing from digests.txt", case.stem()));

        let cold = svc.mine(MineRequest::new(spec.clone(), kernel, case.minsup));
        assert_eq!(cold.outcome, Outcome::Complete, "{}", case.stem());
        assert!(!cold.stats.cache_hit);
        let bytes = render(cold.patterns.as_ref().expect("patterns included"));
        assert_eq!(cold.stats.emitted, want.lines, "{}: pattern count", case.stem());
        assert_eq!(goldens::fnv(&bytes), want.hash, "{}: cold response digest", case.stem());

        let mut req = MineRequest::new(spec.clone(), kernel, case.minsup);
        req.max_patterns = Some(PREFIX_LINES);
        let warm = svc.mine(req);
        assert!(warm.stats.cache_hit, "{}: warm request must hit the cache", case.stem());
        assert_eq!(
            render(warm.patterns.as_ref().expect("patterns included")),
            goldens::load_prefix(&case.stem()),
            "{}: cache-served budget cut ≠ committed prefix",
            case.stem()
        );
    }
    svc.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random databases, all kernels, serial + parallel: every budget
    /// cut is a prefix of the full serial order.
    #[test]
    fn random_budget_cuts_are_serial_prefixes(
        db in prop::collection::vec(
            prop::collection::btree_set(0u32..10, 0..6)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
            0..30),
        minsup in 1u64..4,
        budget in 0u64..40,
        threads in 1usize..5,
    ) {
        let db = TransactionDb::from_transactions(db);
        for kernel in Kernel::ALL {
            let full = serial(kernel, &db, minsup);
            let control = MineControl::with_budget(budget);
            let got = controlled_serial(kernel, &db, minsup, &control);
            let want = (budget as usize).min(full.len());
            prop_assert_eq!(&got, &full[..want], "{} serial", kernel.label());

            let control = MineControl::with_budget(budget);
            let (got, _) = controlled_parallel(kernel, &db, minsup, &control, threads);
            prop_assert!(got.len() as u64 <= budget);
            prop_assert_eq!(&got, &full[..got.len()], "{} parallel", kernel.label());
        }
    }

    /// End-to-end through the service: a cache hit answers byte-identical
    /// to the cold run that populated it, without mining again.
    #[test]
    fn cache_hits_are_byte_identical_to_cold_runs(
        db in prop::collection::vec(
            prop::collection::btree_set(0u32..10, 0..6)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
            1..25),
        minsup in 1u64..4,
    ) {
        let svc = MineService::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        for kernel in Kernel::ALL {
            let req = || MineRequest::new(DatasetSpec::Inline(db.clone()), kernel, minsup);
            let cold = svc.mine(req());
            prop_assert_eq!(cold.outcome, Outcome::Complete);
            prop_assert!(!cold.stats.cache_hit);
            let mined = svc.metrics().get("mined_runs");
            let hit = svc.mine(req());
            prop_assert_eq!(hit.outcome, Outcome::Complete);
            prop_assert!(hit.stats.cache_hit, "{}", kernel.label());
            prop_assert_eq!(svc.metrics().get("mined_runs"), mined, "hit must not mine");
            prop_assert_eq!(hit.patterns, cold.patterns, "{}", kernel.label());
        }
        svc.shutdown();
    }
}
