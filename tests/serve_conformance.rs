//! Service-layer conformance: stopped runs emit serial-order prefixes,
//! and cache hits are byte-identical to cold runs.
//!
//! The service's central claim (DESIGN.md §10) is that *every* response
//! — complete, budget-truncated, cancelled, or deadline-cut — is a
//! contiguous prefix of the kernel's deterministic serial emission
//! order. This suite drives the claim through both [`MinePlan`]
//! execution paths (serial streaming and the work-stealing runtime)
//! for all three kernels, across every budget value, and
//! property-tests the cache-hit path end to end.

use chaos::goldens::{self, GoldenCase, PREFIX_LINES};
use exec::MinePlan;
use fpm::control::MineControl;
use fpm::{CollectSink, ItemsetCount, PatternSink, RecordSink, TransactionDb};
use par::ParConfig;
use proptest::prelude::*;
use serve::{DatasetSpec, Kernel, MineRequest, MineService, Outcome, ServeConfig};

fn toy() -> TransactionDb {
    TransactionDb::from_transactions(vec![
        vec![0, 2, 5],
        vec![1, 2, 5],
        vec![0, 2, 5],
        vec![3, 4],
        vec![0, 1, 2, 3, 4, 5],
    ])
}

/// The full serial emission sequence (not canonicalized — order is the
/// property under test).
fn serial(kernel: Kernel, db: &TransactionDb, minsup: u64) -> Vec<ItemsetCount> {
    let mut sink = CollectSink::default();
    match kernel {
        Kernel::Lcm => {
            lcm::mine(db, minsup, &lcm::LcmConfig::all(), &mut sink);
        }
        Kernel::Eclat => {
            eclat::mine(db, minsup, &eclat::EclatConfig::all(), &mut sink);
        }
        Kernel::FpGrowth => {
            fpgrowth::mine(db, minsup, &fpgrowth::FpConfig::all(), &mut sink);
        }
    }
    sink.patterns
}

fn controlled_serial(
    kernel: Kernel,
    db: &TransactionDb,
    minsup: u64,
    control: &MineControl,
) -> Vec<ItemsetCount> {
    let mut sink = CollectSink::default();
    MinePlan::kernel(kernel, minsup).execute_controlled(db, control, &mut sink);
    sink.patterns
}

fn controlled_parallel(
    kernel: Kernel,
    db: &TransactionDb,
    minsup: u64,
    control: &MineControl,
    threads: usize,
) -> (Vec<ItemsetCount>, bool) {
    let mut sink = CollectSink::default();
    let summary = MinePlan::kernel(kernel, minsup)
        .par_config(ParConfig::with_threads(threads))
        .execute_controlled(db, control, &mut sink);
    (sink.patterns, summary.complete)
}

/// Serial controlled runs under every budget value emit exactly the
/// first `budget` patterns of the serial order — for all three kernels.
#[test]
fn budget_prefixes_match_serial_order_serially() {
    let db = toy();
    for kernel in Kernel::ALL {
        let full = serial(kernel, &db, 2);
        assert!(full.len() > 4, "{}: toy must emit enough", kernel.label());
        for budget in 0..=full.len() as u64 + 2 {
            let control = MineControl::with_budget(budget);
            let got = controlled_serial(kernel, &db, 2, &control);
            let want = budget.min(full.len() as u64) as usize;
            assert_eq!(
                got,
                full[..want],
                "{} budget={budget}: must be the exact serial prefix",
                kernel.label()
            );
        }
    }
}

/// The same property through the work-stealing parallel path: whatever
/// a tripped run merges is a contiguous serial-order prefix.
#[test]
fn parallel_cut_output_is_a_serial_prefix() {
    let db = toy();
    for kernel in Kernel::ALL {
        let full = serial(kernel, &db, 2);
        for threads in [1usize, 2, 3, 7] {
            for budget in [0u64, 1, 3, 5, full.len() as u64, full.len() as u64 + 5] {
                let control = MineControl::with_budget(budget);
                let (got, complete) = controlled_parallel(kernel, &db, 2, &control, threads);
                assert!(
                    got.len() as u64 <= budget,
                    "{} threads={threads} budget={budget}: over-delivered",
                    kernel.label()
                );
                assert_eq!(
                    got,
                    full[..got.len()],
                    "{} threads={threads} budget={budget}: not a serial prefix",
                    kernel.label()
                );
                if budget > full.len() as u64 {
                    assert!(complete, "{}: nothing tripped", kernel.label());
                    assert_eq!(got, full);
                }
            }
        }
    }
}

/// Pre-cancelled controls yield the empty prefix everywhere.
#[test]
fn cancelled_before_start_emits_nothing() {
    let db = toy();
    for kernel in Kernel::ALL {
        let control = MineControl::unlimited();
        control.cancel();
        assert!(controlled_serial(kernel, &db, 2, &control).is_empty());
        let (got, complete) = controlled_parallel(kernel, &db, 2, &control, 3);
        assert!(got.is_empty(), "{}", kernel.label());
        assert!(!complete);
    }
}

/// Renders response patterns in the canonical `RecordSink` line format,
/// so service output can be diffed against the committed corpus bytes.
fn render(patterns: &[ItemsetCount]) -> Vec<u8> {
    let mut sink = RecordSink::default();
    for p in patterns {
        sink.emit(&p.items, p.support);
    }
    sink.bytes
}

/// End-to-end against the committed golden corpus (`tests/goldens/`,
/// see `chaos::goldens`): a cold full response digests to the committed
/// reference, and a warm budget-limited request — served from cache —
/// reproduces the committed `.prefix` file byte-for-byte. The serial
/// reference is never recomputed here; the corpus is the oracle.
#[test]
fn service_responses_match_the_committed_corpus() {
    let digests = goldens::load_digests();
    let svc = MineService::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let spec = DatasetSpec::Named {
        dataset: quest::Dataset::Ds1,
        scale: quest::Scale::Smoke,
    };
    for kernel in Kernel::ALL {
        let case = GoldenCase::smoke(kernel);
        let want = digests
            .get(&case.stem())
            .unwrap_or_else(|| panic!("{} missing from digests.txt", case.stem()));

        let cold = svc.mine(MineRequest::new(spec.clone(), kernel, case.minsup));
        assert_eq!(cold.outcome, Outcome::Complete, "{}", case.stem());
        assert!(!cold.stats.cache_hit);
        let bytes = render(cold.patterns.as_ref().expect("patterns included"));
        assert_eq!(cold.stats.emitted, want.lines, "{}: pattern count", case.stem());
        assert_eq!(goldens::fnv(&bytes), want.hash, "{}: cold response digest", case.stem());

        let mut req = MineRequest::new(spec.clone(), kernel, case.minsup);
        req.max_patterns = Some(PREFIX_LINES);
        let warm = svc.mine(req);
        assert!(warm.stats.cache_hit, "{}: warm request must hit the cache", case.stem());
        assert_eq!(
            render(warm.patterns.as_ref().expect("patterns included")),
            goldens::load_prefix(&case.stem()),
            "{}: cache-served budget cut ≠ committed prefix",
            case.stem()
        );
    }
    svc.shutdown();
}

/// Satellite: the single-flight stampede. K identical cold requests
/// arrive together; the service must mine exactly once and answer all
/// K byte-identically to the serial golden for that request. The
/// mining gate makes the pile-up deterministic: the leader registers,
/// parks before mining, the followers attach, then the gate opens.
#[test]
fn cold_stampede_mines_once_and_fans_out_identically() {
    const K: usize = 8;
    let db_rows = vec![
        vec![0, 2, 5],
        vec![1, 2, 5],
        vec![0, 2, 5],
        vec![3, 4],
        vec![0, 1, 2, 3, 4, 5],
    ];
    let golden = render(&serial(Kernel::Lcm, &toy(), 2));
    let svc = MineService::start(ServeConfig {
        shards: 2,
        workers: 2,
        ..ServeConfig::default()
    });
    let req = || MineRequest::new(DatasetSpec::Inline(db_rows.clone()), Kernel::Lcm, 2);

    svc.hold_mining(true);
    let leader = svc.submit(req());
    wait_for_counter(&svc, "singleflight_leaders", 1);
    let followers: Vec<_> = (0..K - 1).map(|_| svc.submit(req())).collect();
    wait_for_counter(&svc, "requests_coalesced", (K - 1) as u64);
    svc.hold_mining(false);

    let mut responses = vec![leader.wait()];
    responses.extend(followers.into_iter().map(|t| t.wait()));
    assert_eq!(responses.len(), K);
    for (i, resp) in responses.iter().enumerate() {
        assert_eq!(resp.outcome, Outcome::Complete, "request {i}");
        let bytes = render(resp.patterns.as_ref().expect("patterns included"));
        assert_eq!(
            bytes, golden,
            "request {i}: every stampede response is the single-request golden"
        );
    }
    let m = svc.metrics();
    assert_eq!(m.get("mined_runs"), 1, "the K-way stampede mined exactly once");
    assert_eq!(m.get("singleflight_leaders"), 1);
    assert_eq!(m.get("requests_coalesced"), (K - 1) as u64);
    assert_eq!(m.get("coalesced_served"), (K - 1) as u64);
    assert_eq!(m.get("coalesced_requeued"), 0);
    svc.shutdown();
}

fn wait_for_counter(svc: &MineService, name: &str, want: u64) {
    for _ in 0..5000 {
        if svc.metrics().get(name) >= want {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    panic!(
        "counter {name} never reached {want} (at {})",
        svc.metrics().get(name)
    );
}

/// Satellite: loadgen determinism. The same seed and config must derive
/// the same arrival schedule (same digest) and — on a service that
/// absorbs the offered load — the same deterministic report half; a
/// different seed must offer different traffic.
#[test]
fn loadgen_reruns_reproduce_the_deterministic_summary() {
    use serve::loadgen::{self, LoadConfig};
    let cfg = LoadConfig {
        rps: 300.0,
        duration: std::time::Duration::from_millis(150),
        keys: 6,
        ..LoadConfig::default()
    };
    let a = loadgen::schedule(&cfg);
    let b = loadgen::schedule(&cfg);
    assert_eq!(a, b, "the schedule is a pure function of the config");
    assert_ne!(
        loadgen::schedule_digest(&loadgen::schedule(&LoadConfig { seed: cfg.seed + 1, ..cfg })),
        loadgen::schedule_digest(&a),
        "a different seed offers different traffic"
    );

    let run_once = || {
        let svc = MineService::start(ServeConfig {
            shards: 2,
            workers: 2,
            queue_depth: 4096,
            ..ServeConfig::default()
        });
        let report = loadgen::run(&svc, &cfg);
        svc.shutdown();
        report
    };
    let first = run_once();
    let second = run_once();
    assert_eq!(
        first.deterministic_summary(),
        second.deterministic_summary(),
        "same seed + config must reproduce the BENCH_serve.json summary \
         modulo timing percentiles"
    );
    assert_eq!(first.requests, a.len() as u64, "every scheduled arrival was offered");
    assert_eq!(first.rejected, 0, "the gentle config is fully absorbed");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite: shard routing. Routing is a stable pure function of
    /// the dataset spec, and after any request mix the per-shard
    /// counters sum exactly to the global ones for every metric.
    #[test]
    fn shard_routing_is_stable_and_metrics_partition(
        dbs in prop::collection::vec(
            prop::collection::vec(
                prop::collection::btree_set(0u32..12, 1..5)
                    .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
                1..6),
            1..8),
        shards in 1usize..5,
        repeats in 1usize..3,
    ) {
        let svc = MineService::start(ServeConfig {
            shards,
            workers: 1,
            ..ServeConfig::default()
        });
        prop_assert_eq!(svc.shard_count(), shards.max(1));
        let specs: Vec<DatasetSpec> =
            dbs.iter().map(|rows| DatasetSpec::Inline(rows.clone())).collect();
        let routed: Vec<usize> = specs.iter().map(|s| svc.shard_of(s)).collect();
        for _ in 0..repeats {
            for (spec, &shard) in specs.iter().zip(&routed) {
                prop_assert_eq!(
                    svc.shard_of(spec), shard,
                    "routing must not drift while the service runs"
                );
                let resp = svc.mine(MineRequest::new(spec.clone(), Kernel::Eclat, 1));
                prop_assert_eq!(resp.outcome, Outcome::Complete);
            }
        }
        let global = svc.metrics();
        let total_requests = (dbs.len() * repeats) as u64;
        prop_assert_eq!(global.get("requests_submitted"), total_requests);
        for name in serve::METRIC_NAMES {
            let shard_sum: u64 = (0..svc.shard_count())
                .map(|s| svc.shard_metrics(s).get(name))
                .sum();
            prop_assert_eq!(
                shard_sum,
                global.get(name),
                "{}: per-shard counters must sum to the global counter",
                name
            );
        }
        // Each spec's traffic landed entirely on its routed shard.
        for (spec, &shard) in specs.iter().zip(&routed) {
            let _ = spec;
            prop_assert!(svc.shard_metrics(shard).get("requests_submitted") > 0);
        }
        svc.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random databases, all kernels, serial + parallel: every budget
    /// cut is a prefix of the full serial order.
    #[test]
    fn random_budget_cuts_are_serial_prefixes(
        db in prop::collection::vec(
            prop::collection::btree_set(0u32..10, 0..6)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
            0..30),
        minsup in 1u64..4,
        budget in 0u64..40,
        threads in 1usize..5,
    ) {
        let db = TransactionDb::from_transactions(db);
        for kernel in Kernel::ALL {
            let full = serial(kernel, &db, minsup);
            let control = MineControl::with_budget(budget);
            let got = controlled_serial(kernel, &db, minsup, &control);
            let want = (budget as usize).min(full.len());
            prop_assert_eq!(&got, &full[..want], "{} serial", kernel.label());

            let control = MineControl::with_budget(budget);
            let (got, _) = controlled_parallel(kernel, &db, minsup, &control, threads);
            prop_assert!(got.len() as u64 <= budget);
            prop_assert_eq!(&got, &full[..got.len()], "{} parallel", kernel.label());
        }
    }

    /// End-to-end through the service: a cache hit answers byte-identical
    /// to the cold run that populated it, without mining again.
    #[test]
    fn cache_hits_are_byte_identical_to_cold_runs(
        db in prop::collection::vec(
            prop::collection::btree_set(0u32..10, 0..6)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
            1..25),
        minsup in 1u64..4,
    ) {
        let svc = MineService::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        for kernel in Kernel::ALL {
            let req = || MineRequest::new(DatasetSpec::Inline(db.clone()), kernel, minsup);
            let cold = svc.mine(req());
            prop_assert_eq!(cold.outcome, Outcome::Complete);
            prop_assert!(!cold.stats.cache_hit);
            let mined = svc.metrics().get("mined_runs");
            let hit = svc.mine(req());
            prop_assert_eq!(hit.outcome, Outcome::Complete);
            prop_assert!(hit.stats.cache_hit, "{}", kernel.label());
            prop_assert_eq!(svc.metrics().get("mined_runs"), mined, "hit must not mine");
            prop_assert_eq!(hit.patterns, cold.patterns, "{}", kernel.label());
        }
        svc.shutdown();
    }
}
