//! Semantic effect tests: each ALSO pattern must move the *measured*
//! memory behaviour (on the simulated M1 machine) or work counters in the
//! direction the paper claims — not just leave results unchanged.

use fpm::{CountSink, TransactionDb};
use memsim::{CacheProbe, Machine};
use quest::{Dataset, Scale};

fn ds1() -> (TransactionDb, u64) {
    (
        Dataset::Ds1.generate(Scale::Smoke),
        Dataset::Ds1.support(Scale::Smoke),
    )
}

fn lcm_cycles(db: &TransactionDb, minsup: u64, cfg: &lcm::LcmConfig) -> (f64, u64) {
    let mut probe = CacheProbe::new(Machine::m1());
    let mut sink = CountSink::default();
    lcm::mine_probed(db, minsup, cfg, &mut probe, &mut sink);
    (probe.report("lcm").cycles, sink.count)
}

fn fpg_report(db: &TransactionDb, minsup: u64, cfg: &fpgrowth::FpConfig) -> (memsim::MemReport, u64) {
    let mut probe = CacheProbe::new(Machine::m1());
    let mut sink = CountSink::default();
    fpgrowth::mine_probed(db, minsup, cfg, &mut probe, &mut sink);
    (probe.report("fpg"), sink.count)
}

/// P1 for Eclat: lexicographic ordering + 0-escaping cuts the words
/// processed per intersection (§4.2).
#[test]
fn lex_zero_escaping_reduces_eclat_work() {
    let (db, minsup) = ds1();
    let mut s1 = CountSink::default();
    let base = eclat::mine(&db, minsup, &eclat::EclatConfig::baseline(), &mut s1);
    let mut s2 = CountSink::default();
    let lex = eclat::mine(&db, minsup, &eclat::EclatConfig::lex(), &mut s2);
    assert_eq!(s1.count, s2.count);
    assert!(
        (lex.words_processed as f64) < 0.9 * base.words_processed as f64,
        "0-escaping saved too little: {} vs {}",
        lex.words_processed,
        base.words_processed
    );
}

/// P1 for LCM: lexicographic ordering reduces simulated cycles on
/// *short*-transaction scattered input — the case §3.2 singles out
/// ("this reduction in cache misses will be most significant when the
/// transactions are short; in long transactions most of the spatial
/// locality is already captured" — on T60-long DS1 the effect is ≈0,
/// which `repro fig8` shows).
#[test]
fn lex_reduces_lcm_cycles_on_short_transactions() {
    let mut s = 2024u64;
    let mut rnd = || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let db = TransactionDb::from_transactions(
        (0..30_000)
            .map(|_| {
                (0..4).map(|_| (rnd() % 300) as u32).collect::<Vec<_>>()
            })
            .collect(),
    );
    let (base, n1) = lcm_cycles(&db, 300, &lcm::LcmConfig::baseline());
    let (lex, n2) = lcm_cycles(&db, 300, &lcm::LcmConfig::lex());
    assert_eq!(n1, n2);
    assert!(
        lex < base,
        "lex must reduce simulated cycles on short transactions: {lex} vs {base}"
    );
}

/// P4: compacted counters reduce simulated cycles vs the scattered
/// 32-byte slot layout.
#[test]
fn compaction_reduces_counter_traffic() {
    let (db, minsup) = ds1();
    let compact_only = lcm::LcmConfig {
        compact_counters: true,
        ..lcm::LcmConfig::baseline()
    };
    let (base, n1) = lcm_cycles(&db, minsup, &lcm::LcmConfig::baseline());
    let (compact, n2) = lcm_cycles(&db, minsup, &compact_only);
    assert_eq!(n1, n2);
    assert!(
        compact < base,
        "compaction must reduce simulated cycles: {compact} vs {base}"
    );
}

/// P3: aggregated buckets reduce simulated cycles of duplicate removal
/// (fewer dependent loads on a duplicate-heavy input).
#[test]
fn aggregation_reduces_rmdup_cycles() {
    // duplicate-heavy database with long-ish transactions
    let db = TransactionDb::from_transactions(
        (0..6000u32)
            .map(|k| match k % 5 {
                0 => vec![0, 1, 2, 3],
                1 => vec![0, 1, 2],
                2 => vec![0, 1, 2, 3],
                3 => vec![4, 5, 6],
                _ => vec![0, 2, 4, 6],
            })
            .collect(),
    );
    use lcm::projdb::ProjDb;
    use lcm::rmdup::{rm_dup_trans, BucketImpl};
    let ranked = fpm::remap(&db, 2);
    let pdb = ProjDb::from_ranked(&ranked.transactions);
    let mut p1 = CacheProbe::new(Machine::m1());
    let a = rm_dup_trans(&pdb.items, pdb.heads.clone(), BucketImpl::Linked, &mut p1);
    let mut p2 = CacheProbe::new(Machine::m1());
    let b = rm_dup_trans(&pdb.items, pdb.heads.clone(), BucketImpl::Aggregated, &mut p2);
    assert_eq!(a.len(), b.len());
    let (ca, cb) = (p1.report("l").cycles, p2.report("a").cycles);
    assert!(cb < ca, "aggregation must cut rm_dup cycles: {cb} vs {ca}");
}

/// P7.1: wave-front prefetch reduces simulated cycles of the baseline
/// LCM (latency hiding on the header chases).
#[test]
fn wavefront_prefetch_reduces_cycles() {
    let (db, minsup) = ds1();
    let (base, n1) = lcm_cycles(&db, minsup, &lcm::LcmConfig::baseline());
    let (pref, n2) = lcm_cycles(&db, minsup, &lcm::LcmConfig::pref());
    assert_eq!(n1, n2);
    assert!(
        pref < base,
        "wave-front prefetch must reduce simulated cycles: {pref} vs {base}"
    );
}

/// P2+P3 for FP-Growth: the reorganized tree (delta nodes + aggregation)
/// reduces simulated cycles.
#[test]
fn fpgrowth_reorg_reduces_cycles() {
    let (db, minsup) = ds1();
    let (base, n1) = fpg_report(&db, minsup, &fpgrowth::FpConfig::baseline());
    let (reorg, n2) = fpg_report(&db, minsup, &fpgrowth::FpConfig::reorg());
    assert_eq!(n1, n2);
    assert!(
        reorg.cycles < base.cycles,
        "reorg must reduce simulated cycles: {} vs {}",
        reorg.cycles,
        base.cycles
    );
}

/// P8: the SIMD ladder is strictly faster than the table lookup on the
/// host for L2-sized vectors (native wall-clock, not simulation).
#[test]
fn simd_beats_table_lookup_natively() {
    use also::bits::BitVec;
    use also::simd::{and_count, Popcount};
    let n_bits = 1 << 21;
    let a = BitVec::from_indices(n_bits, &(0..n_bits as u32).step_by(3).collect::<Vec<_>>());
    let b = BitVec::from_indices(n_bits, &(0..n_bits as u32).step_by(7).collect::<Vec<_>>());
    let words = a.words();
    let time = |s: Popcount| {
        let t = std::time::Instant::now();
        for _ in 0..10 {
            std::hint::black_box(and_count(&a, &b, 0..words, s));
        }
        t.elapsed().as_secs_f64()
    };
    time(Popcount::Table16); // warm both paths
    let best = Popcount::best();
    let t_table = time(Popcount::Table16);
    let t_simd = time(best);
    assert!(
        t_simd < t_table,
        "{} ({t_simd:.4}s) must beat table16 ({t_table:.4}s)",
        best.label()
    );
}

/// The paper's DS4 observation: on the sparse, scattered AP-like input,
/// tiling yields (almost) nothing compared to its effect on DS1 — here
/// checked through the advisor's scatter/density rules, which encode
/// exactly that analysis.
#[test]
fn advisor_reflects_ds4_analysis() {
    use also::advisor::{advise, AdvisorConfig};
    use also::catalog::{Kernel, Pattern};
    let ds1 = fpm::metrics::profile(&Dataset::Ds1.generate(Scale::Smoke), Dataset::Ds1.support(Scale::Smoke));
    let ds4 = fpm::metrics::profile(&Dataset::Ds4.generate(Scale::Smoke), Dataset::Ds4.support(Scale::Smoke));
    let cfg = AdvisorConfig::default();
    let a1 = advise(&ds1, Kernel::Lcm, &cfg);
    let a4 = advise(&ds4, Kernel::Lcm, &cfg);
    assert!(a1.contains(&Pattern::Tiling), "DS1 is dense enough to tile");
    assert!(
        !a4.contains(&Pattern::Tiling),
        "DS4 (density {:.6}) must not tile",
        ds4.density
    );
}

/// All-patterns never changes results on any smoke-scale dataset, for
/// any kernel (the workhorse end-to-end equivalence).
#[test]
fn all_variants_agree_on_every_dataset() {
    use fpm::StatsSink;
    for ds in Dataset::ALL {
        let db = ds.generate(Scale::Smoke);
        let minsup = ds.support(Scale::Smoke);
        let mut reference: Option<StatsSink> = None;
        let mut check = |label: String, sink: StatsSink| match &reference {
            None => reference = Some(sink),
            Some(r) => assert_eq!(r, &sink, "{} {label}", ds.label()),
        };
        for (name, cfg) in lcm::variants() {
            let mut s = StatsSink::default();
            lcm::mine(&db, minsup, &cfg, &mut s);
            check(format!("lcm/{name}"), s);
        }
        for (name, cfg) in eclat::variants() {
            let mut s = StatsSink::default();
            eclat::mine(&db, minsup, &cfg, &mut s);
            check(format!("eclat/{name}"), s);
        }
        for (name, cfg) in fpgrowth::variants() {
            let mut s = StatsSink::default();
            fpgrowth::mine(&db, minsup, &cfg, &mut s);
            check(format!("fpgrowth/{name}"), s);
        }
    }
}
