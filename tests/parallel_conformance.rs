//! Parallel-vs-serial conformance: for every kernel × ALSO variant ×
//! thread count, executing a [`MinePlan`] on the `fpm-par` work-stealing
//! runtime must produce *exactly* the serial kernel's output — same
//! itemsets, same supports — and the merged emission stream must be
//! byte-identical across runs (the determinism guarantee of the
//! rank-ordered merge).
//!
//! Thread count 7 is included deliberately: a prime, larger-than-core
//! count exercises the remainder of the round-robin deal and forces
//! steals from partially drained deques.

use exec::MinePlan;
use fpm::types::canonicalize;
use fpm::{CollectSink, ItemsetCount, RecordSink, TransactionDb};
use par::ParConfig;
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// The kernel × named-variant matrix under test.
fn variant_matrix() -> Vec<(&'static str, &'static str)> {
    let mut m = Vec::new();
    for (name, _) in lcm::variants() {
        m.push(("lcm", name));
    }
    for (name, _) in eclat::variants() {
        m.push(("eclat", name));
    }
    for (name, _) in fpgrowth::variants() {
        m.push(("fpgrowth", name));
    }
    m
}

/// The serial reference: the kernel's own `mine` entry point.
fn serial(kernel: &str, variant: &str, db: &TransactionDb, minsup: u64) -> Vec<ItemsetCount> {
    let mut s = CollectSink::default();
    match kernel {
        "lcm" => {
            let cfg = lcm::variants().into_iter().find(|(n, _)| *n == variant).unwrap().1;
            lcm::mine(db, minsup, &cfg, &mut s);
        }
        "eclat" => {
            let cfg = eclat::variants().into_iter().find(|(n, _)| *n == variant).unwrap().1;
            eclat::mine(db, minsup, &cfg, &mut s);
        }
        "fpgrowth" => {
            let cfg = fpgrowth::variants().into_iter().find(|(n, _)| *n == variant).unwrap().1;
            fpgrowth::mine(db, minsup, &cfg, &mut s);
        }
        other => panic!("unknown kernel {other}"),
    }
    canonicalize(s.patterns)
}

/// A plan forced through the work-stealing runtime (even at 1 thread).
fn plan(kernel: &str, variant: &str, minsup: u64, p: &ParConfig) -> MinePlan {
    MinePlan::by_label(kernel, minsup)
        .unwrap()
        .variant(variant)
        .unwrap()
        .par_config(*p)
}

fn parallel(
    kernel: &str,
    variant: &str,
    db: &TransactionDb,
    minsup: u64,
    p: &ParConfig,
) -> Vec<ItemsetCount> {
    let mut s = CollectSink::default();
    let summary = plan(kernel, variant, minsup, p).execute(db, &mut s);
    assert!(summary.complete, "{kernel}/{variant}: untripped run must complete");
    canonicalize(s.patterns)
}

/// Asserts parallel == serial for every kernel, every named variant and
/// every thread count in [`THREAD_COUNTS`]. Returns how many kernel ×
/// variant × thread combinations were checked.
fn assert_conformance(db: &TransactionDb, minsup: u64) -> usize {
    let mut checked = 0;
    for &threads in &THREAD_COUNTS {
        let p = ParConfig::with_threads(threads);
        for (kernel, variant) in variant_matrix() {
            assert_eq!(
                parallel(kernel, variant, db, minsup, &p),
                serial(kernel, variant, db, minsup),
                "{kernel}/{variant} threads={threads}"
            );
            checked += 1;
        }
    }
    checked
}

#[test]
fn paper_toy_database_conforms() {
    let db = TransactionDb::from_transactions(vec![
        vec![0, 2, 5],
        vec![1, 2, 5],
        vec![0, 2, 5],
        vec![3, 4],
        vec![0, 1, 2, 3, 4, 5],
    ]);
    for minsup in 1..=3 {
        let checked = assert_conformance(&db, minsup);
        assert_eq!(checked, (6 + 4 + 5) * THREAD_COUNTS.len());
    }
}

#[test]
fn pathological_shapes_conform() {
    // More subtrees than threads, fewer subtrees than threads, empty.
    assert_conformance(&TransactionDb::from_transactions(vec![vec![1, 2, 3]; 20]), 5);
    assert_conformance(
        &TransactionDb::from_transactions((0..10).map(|k| vec![2 * k, 2 * k + 1]).collect()),
        1,
    );
    assert_conformance(&TransactionDb::from_transactions(vec![vec![7]]), 1);
    assert_conformance(&TransactionDb::default(), 1);
}

#[test]
fn quest_database_conforms() {
    let db = quest::quest_generate(&quest::QuestParams {
        n_transactions: 300,
        avg_transaction_len: 8.0,
        avg_pattern_len: 3.0,
        n_items: 30,
        n_patterns: 20,
        ..quest::QuestParams::default()
    });
    // Only the tuned variants at full thread spread: the full variant
    // matrix on a generated database is covered by the proptest below at
    // smaller sizes.
    let expect = serial("lcm", "all", &db, 15);
    assert!(expect.len() > 20, "workload must be non-trivial");
    for &threads in &THREAD_COUNTS {
        let p = ParConfig::with_threads(threads);
        for kernel in ["lcm", "eclat", "fpgrowth"] {
            assert_eq!(
                parallel(kernel, "all", &db, 15, &p),
                serial(kernel, "all", &db, 15),
                "{kernel} threads={threads}"
            );
        }
    }
}

#[test]
fn steal_granularity_does_not_change_results() {
    let db = TransactionDb::from_transactions(
        (0..50u32)
            .map(|k| (0..12).filter(|i| (k + i) % 3 != 0).collect())
            .collect(),
    );
    let expect = serial("lcm", "all", &db, 4);
    for granularity in [1usize, 2, 8, 1000] {
        let p = ParConfig {
            n_threads: 4,
            steal_granularity: granularity,
        };
        assert_eq!(
            parallel("lcm", "all", &db, 4, &p),
            expect,
            "granularity={granularity}"
        );
    }
}

/// Two runs with identical inputs must produce byte-identical merged
/// emission streams — the regression guard for the rank-ordered merge:
/// any nondeterministic interleaving of worker outputs would diverge
/// here long before it corrupted a canonicalized comparison.
#[test]
fn determinism_regression_at_4_threads() {
    let db = TransactionDb::from_transactions(
        (0..80u32)
            .map(|k| (0..14).filter(|i| (k ^ i) % 3 != 0).collect())
            .collect(),
    );
    let p = ParConfig::with_threads(4);
    let record = |run: &dyn Fn(&mut RecordSink)| {
        let mut sink = RecordSink::default();
        run(&mut sink);
        assert!(!sink.bytes.is_empty(), "run must emit patterns");
        sink.bytes
    };
    for (kernel, variant) in variant_matrix() {
        let planned = plan(kernel, variant, 3, &p);
        let a = record(&|s| {
            planned.execute(&db, s);
        });
        let b = record(&|s| {
            planned.execute(&db, s);
        });
        assert_eq!(a, b, "{kernel}/{variant}: merged output must be deterministic");
        // and equal to the serial emission stream, not merely to itself
        let serial_bytes = record(&|s| match kernel {
            "lcm" => {
                let cfg = lcm::variants().into_iter().find(|(n, _)| *n == variant).unwrap().1;
                lcm::mine(&db, 3, &cfg, s);
            }
            "eclat" => {
                let cfg = eclat::variants().into_iter().find(|(n, _)| *n == variant).unwrap().1;
                eclat::mine(&db, 3, &cfg, s);
            }
            "fpgrowth" => {
                let cfg =
                    fpgrowth::variants().into_iter().find(|(n, _)| *n == variant).unwrap().1;
                fpgrowth::mine(&db, 3, &cfg, s);
            }
            other => panic!("unknown kernel {other}"),
        });
        assert_eq!(
            a, serial_bytes,
            "{kernel}/{variant}: merge must reproduce serial order"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random databases: the full kernel × variant × thread-count matrix
    /// conforms. Databases are kept small because each case runs
    /// (6+4+5) × 4 = 60 parallel mines.
    #[test]
    fn random_databases_conform(
        db in prop::collection::vec(
            prop::collection::btree_set(0u32..12, 0..7)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
            0..40),
        minsup in 1u64..6,
    ) {
        let db = TransactionDb::from_transactions(db);
        for &threads in &THREAD_COUNTS {
            let p = ParConfig::with_threads(threads);
            for (kernel, variant) in variant_matrix() {
                prop_assert_eq!(
                    parallel(kernel, variant, &db, minsup, &p),
                    serial(kernel, variant, &db, minsup),
                    "{}/{} threads={}", kernel, variant, threads
                );
            }
        }
    }
}
