//! Parallel-vs-serial conformance: for every kernel × ALSO variant ×
//! thread count, mining on the `fpm-par` work-stealing runtime must
//! produce *exactly* the serial kernel's output — same itemsets, same
//! supports — and the merged emission stream must be byte-identical
//! across runs (the determinism guarantee of the rank-ordered merge).
//!
//! Thread count 7 is included deliberately: a prime, larger-than-core
//! count exercises the remainder of the round-robin deal and forces
//! steals from partially drained deques.

use fpm::types::canonicalize;
use fpm::{CollectSink, ItemsetCount, RecordSink, TransactionDb};
use par::ParConfig;
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn serial_lcm(db: &TransactionDb, minsup: u64, cfg: &lcm::LcmConfig) -> Vec<ItemsetCount> {
    let mut s = CollectSink::default();
    lcm::mine(db, minsup, cfg, &mut s);
    canonicalize(s.patterns)
}

fn serial_eclat(db: &TransactionDb, minsup: u64, cfg: &eclat::EclatConfig) -> Vec<ItemsetCount> {
    let mut s = CollectSink::default();
    eclat::mine(db, minsup, cfg, &mut s);
    canonicalize(s.patterns)
}

fn serial_fpg(db: &TransactionDb, minsup: u64, cfg: &fpgrowth::FpConfig) -> Vec<ItemsetCount> {
    let mut s = CollectSink::default();
    fpgrowth::mine(db, minsup, cfg, &mut s);
    canonicalize(s.patterns)
}

/// Asserts parallel == serial for every kernel, every named variant and
/// every thread count in [`THREAD_COUNTS`]. Returns how many kernel ×
/// variant × thread combinations were checked.
fn assert_conformance(db: &TransactionDb, minsup: u64) -> usize {
    let mut checked = 0;
    for &threads in &THREAD_COUNTS {
        let p = ParConfig::with_threads(threads);
        for (name, cfg) in lcm::variants() {
            assert_eq!(
                lcm::mine_parallel(db, minsup, &cfg, &p),
                serial_lcm(db, minsup, &cfg),
                "lcm/{name} threads={threads}"
            );
            checked += 1;
        }
        for (name, cfg) in eclat::variants() {
            assert_eq!(
                eclat::mine_parallel(db, minsup, &cfg, &p),
                serial_eclat(db, minsup, &cfg),
                "eclat/{name} threads={threads}"
            );
            checked += 1;
        }
        for (name, cfg) in fpgrowth::variants() {
            assert_eq!(
                fpgrowth::mine_parallel(db, minsup, &cfg, &p),
                serial_fpg(db, minsup, &cfg),
                "fpgrowth/{name} threads={threads}"
            );
            checked += 1;
        }
    }
    checked
}

#[test]
fn paper_toy_database_conforms() {
    let db = TransactionDb::from_transactions(vec![
        vec![0, 2, 5],
        vec![1, 2, 5],
        vec![0, 2, 5],
        vec![3, 4],
        vec![0, 1, 2, 3, 4, 5],
    ]);
    for minsup in 1..=3 {
        let checked = assert_conformance(&db, minsup);
        assert_eq!(checked, (6 + 4 + 5) * THREAD_COUNTS.len());
    }
}

#[test]
fn pathological_shapes_conform() {
    // More subtrees than threads, fewer subtrees than threads, empty.
    assert_conformance(&TransactionDb::from_transactions(vec![vec![1, 2, 3]; 20]), 5);
    assert_conformance(
        &TransactionDb::from_transactions((0..10).map(|k| vec![2 * k, 2 * k + 1]).collect()),
        1,
    );
    assert_conformance(&TransactionDb::from_transactions(vec![vec![7]]), 1);
    assert_conformance(&TransactionDb::default(), 1);
}

#[test]
fn quest_database_conforms() {
    let db = quest::quest_generate(&quest::QuestParams {
        n_transactions: 300,
        avg_transaction_len: 8.0,
        avg_pattern_len: 3.0,
        n_items: 30,
        n_patterns: 20,
        ..quest::QuestParams::default()
    });
    // Only the tuned variants at full thread spread: the full variant
    // matrix on a generated database is covered by the proptest below at
    // smaller sizes.
    for &threads in &THREAD_COUNTS {
        let p = ParConfig::with_threads(threads);
        let cfg = lcm::LcmConfig::all();
        let expect = serial_lcm(&db, 15, &cfg);
        assert!(expect.len() > 20, "workload must be non-trivial");
        assert_eq!(lcm::mine_parallel(&db, 15, &cfg, &p), expect, "lcm");
        let cfg = eclat::EclatConfig::all();
        assert_eq!(
            eclat::mine_parallel(&db, 15, &cfg, &p),
            serial_eclat(&db, 15, &cfg),
            "eclat"
        );
        let cfg = fpgrowth::FpConfig::all();
        assert_eq!(
            fpgrowth::mine_parallel(&db, 15, &cfg, &p),
            serial_fpg(&db, 15, &cfg),
            "fpgrowth"
        );
    }
}

#[test]
fn steal_granularity_does_not_change_results() {
    let db = TransactionDb::from_transactions(
        (0..50u32)
            .map(|k| (0..12).filter(|i| (k + i) % 3 != 0).collect())
            .collect(),
    );
    let cfg = lcm::LcmConfig::all();
    let expect = serial_lcm(&db, 4, &cfg);
    for granularity in [1usize, 2, 8, 1000] {
        let p = ParConfig {
            n_threads: 4,
            steal_granularity: granularity,
        };
        assert_eq!(
            lcm::mine_parallel(&db, 4, &cfg, &p),
            expect,
            "granularity={granularity}"
        );
    }
}

/// Two runs with identical inputs must produce byte-identical merged
/// emission streams — the regression guard for the rank-ordered merge:
/// any nondeterministic interleaving of worker outputs would diverge
/// here long before it corrupted a canonicalized comparison.
#[test]
fn determinism_regression_at_4_threads() {
    let db = TransactionDb::from_transactions(
        (0..80u32)
            .map(|k| (0..14).filter(|i| (k ^ i) % 3 != 0).collect())
            .collect(),
    );
    let p = ParConfig::with_threads(4);
    let record = |run: &dyn Fn(&mut RecordSink)| {
        let mut sink = RecordSink::default();
        run(&mut sink);
        assert!(!sink.bytes.is_empty(), "run must emit patterns");
        sink.bytes
    };
    for (name, cfg) in lcm::variants() {
        let a = record(&|s| lcm::parallel::mine_parallel_into(&db, 3, &cfg, &p, s));
        let b = record(&|s| lcm::parallel::mine_parallel_into(&db, 3, &cfg, &p, s));
        assert_eq!(a, b, "lcm/{name}: merged output must be deterministic");
        // and equal to the serial emission stream, not merely to itself
        let serial = record(&|s| {
            lcm::mine(&db, 3, &cfg, s);
        });
        assert_eq!(a, serial, "lcm/{name}: merge must reproduce serial order");
    }
    for (name, cfg) in eclat::variants() {
        let a = record(&|s| eclat::mine_parallel_into(&db, 3, &cfg, &p, s));
        let b = record(&|s| eclat::mine_parallel_into(&db, 3, &cfg, &p, s));
        assert_eq!(a, b, "eclat/{name}: merged output must be deterministic");
        let serial = record(&|s| {
            eclat::mine(&db, 3, &cfg, s);
        });
        assert_eq!(a, serial, "eclat/{name}: merge must reproduce serial order");
    }
    for (name, cfg) in fpgrowth::variants() {
        let a = record(&|s| fpgrowth::mine_parallel_into(&db, 3, &cfg, &p, s));
        let b = record(&|s| fpgrowth::mine_parallel_into(&db, 3, &cfg, &p, s));
        assert_eq!(a, b, "fpgrowth/{name}: merged output must be deterministic");
        let serial = record(&|s| {
            fpgrowth::mine(&db, 3, &cfg, s);
        });
        assert_eq!(a, serial, "fpgrowth/{name}: merge must reproduce serial order");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random databases: the full kernel × variant × thread-count matrix
    /// conforms. Databases are kept small because each case runs
    /// (6+4+5) × 4 = 60 parallel mines.
    #[test]
    fn random_databases_conform(
        db in prop::collection::vec(
            prop::collection::btree_set(0u32..12, 0..7)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
            0..40),
        minsup in 1u64..6,
    ) {
        let db = TransactionDb::from_transactions(db);
        for &threads in &THREAD_COUNTS {
            let p = ParConfig::with_threads(threads);
            for (name, cfg) in lcm::variants() {
                prop_assert_eq!(
                    lcm::mine_parallel(&db, minsup, &cfg, &p),
                    serial_lcm(&db, minsup, &cfg),
                    "lcm/{} threads={}", name, threads
                );
            }
            for (name, cfg) in eclat::variants() {
                prop_assert_eq!(
                    eclat::mine_parallel(&db, minsup, &cfg, &p),
                    serial_eclat(&db, minsup, &cfg),
                    "eclat/{} threads={}", name, threads
                );
            }
            for (name, cfg) in fpgrowth::variants() {
                prop_assert_eq!(
                    fpgrowth::mine_parallel(&db, minsup, &cfg, &p),
                    serial_fpg(&db, minsup, &cfg),
                    "fpgrowth/{} threads={}", name, threads
                );
            }
        }
    }
}
