//! Executor conformance: the `MinePlan` layer's one guarantee, tested
//! from outside the workspace — for *any* plan (kernel × thread count ×
//! budget × deadline trip), whatever reaches the sink is byte-identical
//! to a contiguous prefix of the single-threaded uncontrolled run's
//! serial emission order; with nothing armed it is the whole sequence.
//!
//! The second half pins the serve layer to the same reference: cold
//! responses and cache-served responses both reproduce the serial
//! kernel output exactly (the PR 3 golden behavior, now reached through
//! `MinePlan` instead of the retired per-kernel entry points).

use exec::MinePlan;
use fpm::{CollectSink, ItemsetCount, RecordSink, TransactionDb};
use proptest::prelude::*;
use serve::{DatasetSpec, MineRequest, MineService, Outcome, ServeConfig};
use std::time::Duration;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// The reference stream: the kernel's own serial, uncontrolled `mine`.
fn serial_bytes(kernel: fpm::Kernel, db: &TransactionDb, minsup: u64) -> Vec<u8> {
    let mut sink = RecordSink::default();
    match kernel {
        fpm::Kernel::Lcm => {
            lcm::mine(db, minsup, &lcm::LcmConfig::all(), &mut sink);
        }
        fpm::Kernel::Eclat => {
            eclat::mine(db, minsup, &eclat::EclatConfig::all(), &mut sink);
        }
        fpm::Kernel::FpGrowth => {
            fpgrowth::mine(db, minsup, &fpgrowth::FpConfig::all(), &mut sink);
        }
    }
    sink.bytes
}

fn serial_patterns(kernel: fpm::Kernel, db: &TransactionDb, minsup: u64) -> Vec<ItemsetCount> {
    let mut sink = CollectSink::default();
    match kernel {
        fpm::Kernel::Lcm => {
            lcm::mine(db, minsup, &lcm::LcmConfig::all(), &mut sink);
        }
        fpm::Kernel::Eclat => {
            eclat::mine(db, minsup, &eclat::EclatConfig::all(), &mut sink);
        }
        fpm::Kernel::FpGrowth => {
            fpgrowth::mine(db, minsup, &fpgrowth::FpConfig::all(), &mut sink);
        }
    }
    sink.patterns
}

/// Checks one executed plan's byte stream against the serial reference:
/// must be a line-aligned contiguous prefix, within `budget` lines when
/// a budget is armed, and the *whole* stream when nothing tripped.
fn assert_serial_prefix(
    label: &str,
    got: &[u8],
    full: &[u8],
    budget: Option<u64>,
    summary: &exec::ExecSummary,
) {
    assert!(
        full.starts_with(got),
        "{label}: output is not a prefix of the serial stream"
    );
    assert!(
        got.is_empty() || got.ends_with(b"\n"),
        "{label}: output cut mid-pattern"
    );
    let got_lines = got.split_inclusive(|&b| b == b'\n').count() as u64;
    assert_eq!(summary.emitted, got_lines, "{label}: emitted miscounted");
    if let Some(b) = budget {
        assert!(got_lines <= b, "{label}: over-delivered past the budget");
    }
    if summary.stop_cause.is_none() {
        assert_eq!(got, full, "{label}: untripped run must emit everything");
        assert!(summary.complete, "{label}: untripped run must be complete");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any plan, any trip cause: the sink sees a serial prefix.
    #[test]
    fn any_plan_emits_a_serial_prefix(
        db in prop::collection::vec(
            prop::collection::btree_set(0u32..11, 0..6)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
            0..35),
        minsup in 1u64..4,
        // 30..40 means "no budget armed" (the vendored proptest has no
        // Option strategy).
        budget_sel in 0u64..40,
        deadline_trips in any::<bool>(),
    ) {
        let budget = (budget_sel < 30).then_some(budget_sel);
        let db = TransactionDb::from_transactions(db);
        for kernel in fpm::Kernel::ALL {
            let full = serial_bytes(kernel, &db, minsup);
            for &threads in &THREAD_COUNTS {
                let mut plan = MinePlan::kernel(kernel, minsup).threads(threads);
                if let Some(b) = budget {
                    plan = plan.max_patterns(b);
                }
                if deadline_trips {
                    // An already-expired deadline: the run trips at (or
                    // very near) the first control poll, exercising the
                    // empty/short-prefix path.
                    plan = plan.deadline(Duration::ZERO);
                }
                let mut sink = RecordSink::default();
                let summary = plan.execute(&db, &mut sink);
                let label = format!(
                    "{} threads={threads} budget={budget:?} deadline={deadline_trips}",
                    kernel.label()
                );
                assert_serial_prefix(&label, &sink.bytes, &full, budget, &summary);
                if threads == 1 && !deadline_trips {
                    // Serial budgets are exact, not merely bounded.
                    let full_lines = full.split_inclusive(|&b| b == b'\n').count() as u64;
                    let want = budget.map_or(full_lines, |b| b.min(full_lines));
                    prop_assert_eq!(summary.emitted, want, "{}", label);
                }
            }
        }
    }

    /// The serve layer, reached end to end: cold responses and
    /// cache-served responses both equal the serial kernel output.
    #[test]
    fn serve_cache_hits_still_match_serial_goldens(
        db in prop::collection::vec(
            prop::collection::btree_set(0u32..10, 0..6)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
            1..25),
        minsup in 1u64..4,
        mine_threads in 1usize..4,
    ) {
        let svc = MineService::start(ServeConfig {
            workers: 1,
            mine_threads,
            ..ServeConfig::default()
        });
        let tdb = TransactionDb::from_transactions(db.clone());
        for kernel in fpm::Kernel::ALL {
            let golden = serial_patterns(kernel, &tdb, minsup);
            let req = || MineRequest::new(DatasetSpec::Inline(db.clone()), kernel, minsup);
            let cold = svc.mine(req());
            prop_assert_eq!(cold.outcome, Outcome::Complete, "{}", kernel.label());
            prop_assert!(!cold.stats.cache_hit);
            prop_assert_eq!(
                cold.patterns.as_deref(),
                Some(&golden),
                "{} cold ≠ serial golden", kernel.label()
            );
            let warm = svc.mine(req());
            prop_assert!(warm.stats.cache_hit, "{}", kernel.label());
            prop_assert_eq!(
                warm.patterns.as_deref(),
                Some(&golden),
                "{} cached ≠ serial golden", kernel.label()
            );
        }
        svc.shutdown();
    }
}

/// Deterministic spot-check on the paper's toy database, at every thread
/// count and every trip cause, so a proptest shrink isn't needed to see
/// the basic contract hold.
#[test]
fn toy_database_full_matrix() {
    let db = TransactionDb::from_transactions(vec![
        vec![0, 2, 5],
        vec![1, 2, 5],
        vec![0, 2, 5],
        vec![3, 4],
        vec![0, 1, 2, 3, 4, 5],
    ]);
    for kernel in fpm::Kernel::ALL {
        let full = serial_bytes(kernel, &db, 2);
        assert!(!full.is_empty());
        for &threads in &THREAD_COUNTS {
            // Untripped: byte-identical to serial.
            let mut sink = RecordSink::default();
            let summary = MinePlan::kernel(kernel, 2).threads(threads).execute(&db, &mut sink);
            assert!(summary.complete);
            assert_eq!(sink.bytes, full, "{} threads={threads}", kernel.label());

            // Budget-tripped: an exact (serial) or bounded (parallel)
            // line-aligned prefix.
            let mut sink = RecordSink::default();
            let summary = MinePlan::kernel(kernel, 2)
                .threads(threads)
                .max_patterns(2)
                .execute(&db, &mut sink);
            assert_serial_prefix(
                &format!("{} threads={threads} budget=2", kernel.label()),
                &sink.bytes,
                &full,
                Some(2),
                &summary,
            );

            // Deadline-tripped at zero: still a prefix (usually empty).
            let mut sink = RecordSink::default();
            let summary = MinePlan::kernel(kernel, 2)
                .threads(threads)
                .deadline(Duration::ZERO)
                .execute(&db, &mut sink);
            assert_serial_prefix(
                &format!("{} threads={threads} deadline=0", kernel.label()),
                &sink.bytes,
                &full,
                None,
                &summary,
            );
        }
    }
}
